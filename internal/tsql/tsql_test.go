package tsql

import (
	"strings"
	"testing"

	"timr/internal/temporal"
	"timr/internal/workload"
)

func catalog() Catalog {
	return Catalog{
		"events": workload.UnifiedSchema(),
		"clicks": temporal.NewSchema(
			temporal.Field{Name: "Time", Kind: temporal.KindInt},
			temporal.Field{Name: "UserId", Kind: temporal.KindInt},
			temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		),
		"readings": temporal.NewSchema(
			temporal.Field{Name: "Time", Kind: temporal.KindInt},
			temporal.Field{Name: "ID", Kind: temporal.KindString},
			temporal.Field{Name: "Power", Kind: temporal.KindInt},
		),
		"scores": temporal.NewSchema(
			temporal.Field{Name: "AdId", Kind: temporal.KindInt},
			temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
			temporal.Field{Name: "Z", Kind: temporal.KindFloat},
		),
	}
}

func compile(t *testing.T, sql string) *temporal.Plan {
	t.Helper()
	p, err := Compile(sql, catalog())
	if err != nil {
		t.Fatalf("%v\nquery: %s", err, sql)
	}
	return p
}

func run(t *testing.T, sql string, inputs map[string][]temporal.Event) []temporal.Event {
	t.Helper()
	out, err := temporal.RunPlan(compile(t, sql), inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func reading(tm temporal.Time, id string, power int64) temporal.Event {
	return temporal.PointEvent(tm, temporal.Row{temporal.Int(tm), temporal.String(id), temporal.Int(power)})
}

func click(tm temporal.Time, user, ad int64) temporal.Event {
	return temporal.PointEvent(tm, temporal.Row{temporal.Int(tm), temporal.Int(user), temporal.Int(ad)})
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, COUNT(*) FROM s WHERE x >= 1.5 -- comment\nAND y = 'hi' WINDOW 6h")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
	// Spot checks.
	has := func(kind tokenKind, text string) bool {
		for _, tk := range toks {
			if tk.kind == kind && tk.text == text {
				return true
			}
		}
		return false
	}
	if !has(tokKeyword, "SELECT") || !has(tokKeyword, "COUNT") {
		t.Error("keywords")
	}
	if !has(tokNumber, "1.5") || !has(tokString, "hi") || !has(tokDuration, "6h") {
		t.Error("literals")
	}
	if !has(tokIdent, "a") || !has(tokSymbol, ".") {
		t.Error("qualified ref")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Error("bad character must fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM s WHERE",
		"SELECT * FROM s GROUP x",
		"SELECT SUM(*) FROM s",
		"SELECT * FROM s WINDOW fish",
		"SELECT * FROM s trailing junk",
		"SELECT a FROM s JOIN t",
		"SELECT a FROM s HAVING a > ",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM nosuch",
		"SELECT nope FROM clicks",
		"SELECT COUNT(*) AS a, SUM(AdId) AS b FROM clicks",  // two aggregates
		"SELECT AdId FROM clicks GROUP BY AdId",             // group without aggregate
		"SELECT AdId FROM clicks HAVING AdId > 1",           // having without aggregate
		"SELECT UserId FROM clicks WHERE UserId = 'str'",    // type mismatch
		"SELECT x.UserId FROM clicks",                       // unknown alias
		"SELECT * FROM clicks UNION SELECT * FROM readings", // union schema mismatch
		"SELECT * FROM clicks PARTITION BY Nope",            // bad partition col
		"SELECT l.AdId FROM clicks AS l JOIN readings AS r ON l.AdId = r.Nope",
	}
	for _, q := range bad {
		if _, err := Compile(q, catalog()); err == nil {
			t.Errorf("expected compile error for %q", q)
		}
	}
}

func TestSelectWhereProject(t *testing.T) {
	out := run(t, "SELECT ID, Power AS P FROM readings WHERE Power > 0",
		map[string][]temporal.Event{"readings": {
			reading(1, "a", 0), reading(2, "b", 5),
		}})
	if len(out) != 1 || out[0].Payload[0].AsString() != "b" || out[0].Payload[1].AsInt() != 5 {
		t.Fatalf("out = %v", out)
	}
}

func TestWindowedCountSQL(t *testing.T) {
	// Paper Figure 3 in SQL form.
	out := run(t, "SELECT COUNT(*) AS Cnt FROM readings WHERE Power > 0 WINDOW 3ms",
		map[string][]temporal.Event{"readings": {
			reading(1, "m", 10), reading(2, "m", 0), reading(3, "m", 7),
		}})
	want := []temporal.Event{
		{LE: 1, RE: 3, Payload: temporal.Row{temporal.Int(1)}},
		{LE: 3, RE: 4, Payload: temporal.Row{temporal.Int(2)}},
		{LE: 4, RE: 6, Payload: temporal.Row{temporal.Int(1)}},
	}
	if !temporal.EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestGroupByEqualsBuilder(t *testing.T) {
	// RunningClickCount in SQL must equal the builder version.
	sql := "SELECT AdId, COUNT(*) AS ClickCount FROM clicks GROUP BY AdId WINDOW 50ms"
	events := []temporal.Event{
		click(1, 1, 7), click(5, 2, 7), click(9, 3, 8), click(60, 4, 7),
	}
	got := run(t, sql, map[string][]temporal.Event{"clicks": events})

	builder := temporal.Scan("clicks", catalog()["clicks"]).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("ClickCount")
		})
	want, err := temporal.RunPlan(builder, map[string][]temporal.Event{"clicks": events})
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("SQL %v != builder %v", got, want)
	}
}

func TestHavingFiltersAggregates(t *testing.T) {
	sql := "SELECT AdId, COUNT(*) AS C FROM clicks GROUP BY AdId WINDOW 100ms HAVING C > 1"
	out := run(t, sql, map[string][]temporal.Event{"clicks": {
		click(1, 1, 7), click(2, 2, 7), click(3, 3, 8),
	}})
	for _, e := range out {
		if e.Payload[1].AsInt() <= 1 {
			t.Fatalf("HAVING leaked %v", e)
		}
		if e.Payload[0].AsInt() != 7 {
			t.Fatalf("wrong group %v", e)
		}
	}
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestHoppingWindowSQL(t *testing.T) {
	sql := "SELECT COUNT(*) AS C FROM clicks WINDOW 4ms HOP 2ms"
	out := run(t, sql, map[string][]temporal.Event{"clicks": {
		click(1, 1, 7), click(2, 1, 7), click(5, 1, 7),
	}})
	want := []temporal.Event{
		{LE: 2, RE: 4, Payload: temporal.Row{temporal.Int(1)}},
		{LE: 4, RE: 8, Payload: temporal.Row{temporal.Int(2)}},
		{LE: 8, RE: 10, Payload: temporal.Row{temporal.Int(1)}},
	}
	if !temporal.EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestJoinWithAliases(t *testing.T) {
	sql := `SELECT l.UserId, r.Power
	        FROM clicks AS l
	        JOIN readings AS r WINDOW 10ms ON l.Time = r.Time`
	_ = sql
	// Simpler: join on user/id is not type-compatible across catalogs, so
	// join clicks with clicks via subquery alias.
	sql2 := `SELECT l.UserId, r.UserId AS Other
	         FROM clicks AS l
	         JOIN (SELECT * FROM clicks WINDOW 10ms) AS r ON l.AdId = r.AdId`
	out := run(t, sql2, map[string][]temporal.Event{"clicks": {
		click(1, 100, 7), click(5, 200, 7), click(50, 300, 7),
	}})
	// Pairs within 10ms on the same ad: (5,(1)) joins, (1,(1)) self at
	// same instant, etc. Just require the (200,100) pairing present.
	found := false
	for _, e := range out {
		if e.Payload[0].AsInt() == 200 && e.Payload[1].AsInt() == 100 {
			found = true
		}
		if e.Payload[0].AsInt() == 300 && e.Payload[1].AsInt() == 100 {
			t.Fatalf("expired join result: %v", e)
		}
	}
	if !found {
		t.Fatalf("missing expected join pair: %v", out)
	}
}

func TestAntiJoinSQL(t *testing.T) {
	// Bot-elimination shape: drop clicks by flagged users.
	sql := `SELECT *
	        FROM clicks AS c
	        ANTIJOIN (SELECT UserId, COUNT(*) AS N FROM clicks GROUP BY UserId WINDOW 100ms HAVING N > 2) AS bots
	        ON c.UserId = bots.UserId`
	out := run(t, sql, map[string][]temporal.Event{"clicks": {
		click(1, 9, 7), click(2, 9, 7), click(3, 9, 7), click(4, 9, 7), // user 9: flagged after 3rd
		click(3, 5, 8), // normal user
	}})
	for _, e := range out {
		if e.Payload[1].AsInt() == 9 && e.LE == 4 {
			t.Fatalf("flagged user's later click survived: %v", out)
		}
	}
	var normal int
	for _, e := range out {
		if e.Payload[1].AsInt() == 5 {
			normal++
		}
	}
	if normal != 1 {
		t.Fatalf("normal user lost events: %v", out)
	}
}

func TestUnionSQL(t *testing.T) {
	sql := `SELECT UserId FROM clicks WHERE AdId = 7
	        UNION
	        SELECT UserId FROM clicks WHERE AdId = 8`
	out := run(t, sql, map[string][]temporal.Event{"clicks": {
		click(1, 1, 7), click(2, 2, 8), click(3, 3, 9),
	}})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestSourceLifetimeClauses(t *testing.T) {
	// SHIFT and POINT on a source.
	sql := "SELECT * FROM clicks WINDOW 5ms SHIFT -5ms"
	plan := compile(t, sql)
	found := 0
	plan.Walk(func(n *temporal.Plan) {
		if n.Kind == temporal.OpAlterLifetime {
			found++
		}
	})
	if found != 2 {
		t.Fatalf("expected window+shift lifetime ops, found %d", found)
	}
	if compile(t, "SELECT * FROM clicks WINDOW 10ms POINT").MaxWindow() == 0 {
		t.Fatal("window lost")
	}
}

func TestAbsHavingOnFloats(t *testing.T) {
	sql := "SELECT Keyword FROM scores WHERE ABS(Z) >= 1.96"
	out := run(t, sql, map[string][]temporal.Event{"scores": {
		temporal.PointEvent(1, temporal.Row{temporal.Int(1), temporal.Int(10), temporal.Float(2.5)}),
		temporal.PointEvent(2, temporal.Row{temporal.Int(1), temporal.Int(11), temporal.Float(-3.0)}),
		temporal.PointEvent(3, temporal.Row{temporal.Int(1), temporal.Int(12), temporal.Float(0.4)}),
	}})
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestPartitionByAnnotation(t *testing.T) {
	plan := compile(t, "SELECT AdId, COUNT(*) AS C FROM clicks GROUP BY AdId WINDOW 1h PARTITION BY AdId")
	exchanges := 0
	plan.Walk(func(n *temporal.Plan) {
		if n.Kind == temporal.OpExchange {
			exchanges++
			if n.Part.String() != "{AdId}" {
				t.Errorf("exchange key = %s", n.Part)
			}
		}
	})
	if exchanges != 1 {
		t.Fatalf("exchanges = %d", exchanges)
	}
}

func TestBotElimInPureSQL(t *testing.T) {
	// The full Figure-11 bot-elimination query in StreamSQL, matching the
	// builder plan's results on generated data.
	sql := `SELECT *
	FROM events AS e
	ANTIJOIN (
	    SELECT UserId, COUNT(*) AS Cnt FROM events WHERE StreamId = 1
	    GROUP BY UserId WINDOW 6h HOP 15m HAVING Cnt > 40
	  UNION
	    SELECT UserId, COUNT(*) AS Cnt FROM events WHERE StreamId = 2
	    GROUP BY UserId WINDOW 6h HOP 15m HAVING Cnt > 80
	) AS bots
	ON e.UserId = bots.UserId
	PARTITION BY UserId`
	plan := compile(t, sql)

	d := workload.Generate(workload.Config{Users: 200, Days: 1, Seed: 2, BotFraction: 0.02})
	got, err := temporal.RunPlan(plan, map[string][]temporal.Event{"events": d.Events()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(d.Rows) {
		t.Fatalf("kept %d of %d — bot elimination did nothing or everything", len(got), len(d.Rows))
	}
	// Sanity: bots lose events, humans don't.
	kept := map[int64]int{}
	total := map[int64]int{}
	for _, e := range got {
		kept[e.Payload[2].AsInt()]++
	}
	for _, r := range d.Rows {
		total[r[2].AsInt()]++
	}
	for u := range d.Bots {
		if kept[u] >= total[u] {
			t.Errorf("bot %d kept all %d events", u, total[u])
		}
	}
}

func TestParseDurationText(t *testing.T) {
	cases := map[string]temporal.Time{
		"500ms": 500,
		"30s":   30 * temporal.Second,
		"15m":   15 * temporal.Minute,
		"6h":    6 * temporal.Hour,
		"2d":    2 * temporal.Day,
		"-5m":   -5 * temporal.Minute,
	}
	for in, want := range cases {
		got, err := parseDurationText(in)
		if err != nil || got != want {
			t.Errorf("parseDurationText(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseDurationText("xh"); err == nil {
		t.Error("bad duration must fail")
	}
}

func TestPlanStringRendering(t *testing.T) {
	plan := compile(t, "SELECT AdId, COUNT(*) AS C FROM clicks GROUP BY AdId WINDOW 1h")
	s := plan.String()
	if !strings.Contains(s, "GroupApply[AdId]") {
		t.Errorf("plan: %s", s)
	}
}

func TestMoreCompileErrors(t *testing.T) {
	bad := []string{
		"SELECT AdId FROM clicks WHERE ABS(UserId) = 'x'",                     // ABS vs string literal
		"SELECT Z FROM scores WHERE ABS(AdId) > 1 UNION SELECT Z FROM scores", // fine ABS int... make bad below
		"SELECT MIN(Nope) AS M FROM clicks",                                   // unknown agg column
		"SELECT l.Nope FROM clicks AS l",                                      // unknown column via alias
		"SELECT UserId FROM (SELECT UserId FROM nosuch) AS s",                 // error inside subquery
	}
	for _, q := range bad[2:] {
		if _, err := Compile(q, catalog()); err == nil {
			t.Errorf("expected compile error for %q", q)
		}
	}
	if _, err := Compile(bad[0], catalog()); err == nil {
		t.Errorf("expected compile error for %q", bad[0])
	}
}

func TestAggAliasDefaultsToAggName(t *testing.T) {
	out := run(t, "SELECT AdId, COUNT(*) FROM clicks GROUP BY AdId WINDOW 10ms",
		map[string][]temporal.Event{"clicks": {click(1, 1, 7)}})
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	plan := compile(t, "SELECT AdId, COUNT(*) FROM clicks GROUP BY AdId WINDOW 10ms")
	if !plan.Schema().Has("COUNT") {
		t.Errorf("schema = %s", plan.Schema())
	}
}

func TestGlobalAggregatesAllKinds(t *testing.T) {
	in := map[string][]temporal.Event{"clicks": {
		click(1, 10, 7), click(2, 20, 7),
	}}
	cases := map[string]string{
		"SELECT SUM(UserId) AS S FROM clicks WINDOW 10ms": "30",
		"SELECT MIN(UserId) AS S FROM clicks WINDOW 10ms": "10",
		"SELECT MAX(UserId) AS S FROM clicks WINDOW 10ms": "20",
		"SELECT AVG(UserId) AS S FROM clicks WINDOW 10ms": "15",
	}
	for sql, want := range cases {
		out := run(t, sql, in)
		found := false
		for _, e := range out {
			if e.Contains(2) {
				found = true
				if e.Payload[0].String() != want {
					t.Errorf("%s => %s, want %s", sql, e.Payload[0], want)
				}
			}
		}
		if !found {
			t.Errorf("%s: no snapshot at t=2", sql)
		}
	}
}

func TestNotAndBoolLiterals(t *testing.T) {
	out := run(t, "SELECT * FROM clicks WHERE NOT (UserId < 100 OR UserId > 300)",
		map[string][]temporal.Event{"clicks": {
			click(1, 50, 7), click(2, 200, 7), click(3, 400, 7),
		}})
	if len(out) != 1 || out[0].Payload[1].AsInt() != 200 {
		t.Fatalf("out = %v", out)
	}
	// TRUE/FALSE literal parse path (bool columns are rare; just parse).
	if _, err := Parse("SELECT * FROM s WHERE x = TRUE"); err != nil {
		t.Error(err)
	}
}

func TestDurationLiteralInComparison(t *testing.T) {
	out := run(t, "SELECT * FROM clicks WHERE Time >= 1m",
		map[string][]temporal.Event{"clicks": {
			click(30*temporal.Second, 1, 7), click(2*temporal.Minute, 2, 7),
		}})
	if len(out) != 1 || out[0].Payload[1].AsInt() != 2 {
		t.Fatalf("out = %v", out)
	}
}
