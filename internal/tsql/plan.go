package tsql

import (
	"fmt"

	"timr/internal/temporal"
)

// Catalog maps stream names to their schemas, the binder's only context.
type Catalog map[string]*temporal.Schema

// Compile parses and binds a StreamSQL query against a catalog, producing
// the same logical plan the fluent builder would (ready for TiMR).
func Compile(src string, cat Catalog) (*temporal.Plan, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return bindQuery(q, cat)
}

func bindQuery(q Query, cat Catalog) (*temporal.Plan, error) {
	switch s := q.(type) {
	case *UnionStmt:
		l, err := bindQuery(s.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := bindQuery(s.Right, cat)
		if err != nil {
			return nil, err
		}
		if !l.Schema().Equal(r.Schema()) {
			return nil, fmt.Errorf("tsql: UNION schema mismatch: %s vs %s", l.Schema(), r.Schema())
		}
		return l.Union(r), nil
	case *SelectStmt:
		return bindSelect(s, cat)
	default:
		return nil, fmt.Errorf("tsql: unknown query node %T", q)
	}
}

// scope tracks alias → column-name resolution through FROM and JOINs.
type scope struct {
	// aliases maps a source alias to the set of output column names its
	// columns ended up under (right-side join collisions get "r."-
	// prefixed names, mirroring Schema.Concat).
	aliases map[string]map[string]string
	schema  *temporal.Schema
}

func newScope() *scope {
	return &scope{aliases: make(map[string]map[string]string)}
}

// addSource registers a source's columns under its alias.
func (sc *scope) addSource(alias string, schema *temporal.Schema, rename func(string) string) {
	cols := make(map[string]string, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		name := schema.Field(i).Name
		out := name
		if rename != nil {
			out = rename(name)
		}
		cols[name] = out
	}
	if alias != "" {
		sc.aliases[alias] = cols
	}
}

// resolve maps a ColRef to the current schema's column name.
func (sc *scope) resolve(c ColRef) (string, error) {
	if c.Qualifier != "" {
		cols, ok := sc.aliases[c.Qualifier]
		if !ok {
			return "", fmt.Errorf("tsql: unknown alias %q", c.Qualifier)
		}
		out, ok := cols[c.Name]
		if !ok {
			return "", fmt.Errorf("tsql: alias %q has no column %q", c.Qualifier, c.Name)
		}
		return out, nil
	}
	if sc.schema.Has(c.Name) {
		return c.Name, nil
	}
	return "", fmt.Errorf("tsql: unknown column %q in %s", c.Name, sc.schema)
}

func bindSelect(s *SelectStmt, cat Catalog) (*temporal.Plan, error) {
	sc := newScope()

	// ---- FROM ----
	plan, err := bindSource(&s.From, cat)
	if err != nil {
		return nil, err
	}
	if len(s.Partition) > 0 {
		for _, c := range s.Partition {
			if !plan.Schema().Has(c) {
				return nil, fmt.Errorf("tsql: PARTITION BY column %q not in %s", c, plan.Schema())
			}
		}
		plan = plan.Exchange(temporal.PartitionBy{Cols: s.Partition})
	}
	sc.schema = plan.Schema()
	sc.addSource(s.From.Alias, plan.Schema(), nil)

	// ---- JOIN / ANTIJOIN ----
	for i := range s.Joins {
		jc := &s.Joins[i]
		right, err := bindSource(&jc.Src, cat)
		if err != nil {
			return nil, err
		}
		if len(s.Partition) > 0 && !jc.Anti {
			// Explicit partitioning extends to join inputs when the key
			// columns exist there.
			ok := true
			for _, c := range s.Partition {
				if !right.Schema().Has(c) {
					ok = false
				}
			}
			if ok {
				right = right.Exchange(temporal.PartitionBy{Cols: s.Partition})
			}
		}
		// Resolve ON pairs: left refs against the current scope, right
		// refs against the joined source.
		rightScope := newScope()
		rightScope.schema = right.Schema()
		rightScope.addSource(jc.Src.Alias, right.Schema(), nil)
		var lk, rk []string
		for _, pair := range jc.On {
			l, err := resolveSide(sc, rightScope, pair.L, pair.R)
			if err != nil {
				return nil, err
			}
			lk = append(lk, l[0])
			rk = append(rk, l[1])
		}
		leftSchema := plan.Schema()
		if jc.Anti {
			plan = plan.AntiSemiJoin(right, lk, rk)
		} else {
			plan = plan.Join(right, lk, rk, nil)
			// Track how right columns were renamed by the concat.
			sc.addSource(jc.Src.Alias, right.Schema(), func(name string) string {
				if leftSchema.Has(name) {
					return "r." + name
				}
				return name
			})
		}
		sc.schema = plan.Schema()
	}

	// ---- WHERE ----
	if s.Where != nil {
		pred, err := bindExpr(s.Where, sc)
		if err != nil {
			return nil, err
		}
		plan = plan.Where(pred)
	}

	// ---- Grouping / aggregation ----
	var aggs []ProjExpr
	for _, pr := range s.Projs {
		if pr.Agg != "" {
			aggs = append(aggs, pr)
		}
	}
	switch {
	case len(aggs) > 1:
		return nil, fmt.Errorf("tsql: at most one aggregate per SELECT (join two queries to combine counts, as the paper's Figure 13 does)")
	case len(aggs) == 1:
		plan, err = bindAggregate(s, aggs[0], plan, sc)
		if err != nil {
			return nil, err
		}
		sc.schema = plan.Schema()
	case len(s.GroupBy) > 0:
		return nil, fmt.Errorf("tsql: GROUP BY requires an aggregate in the SELECT list")
	default:
		if s.Window != nil {
			if s.Hop != nil {
				plan = plan.WithHop(*s.Window, *s.Hop)
			} else {
				plan = plan.WithWindow(*s.Window)
			}
			sc.schema = plan.Schema()
		}
	}

	// ---- HAVING ----
	if s.Having != nil {
		if len(aggs) == 0 {
			return nil, fmt.Errorf("tsql: HAVING requires an aggregate")
		}
		pred, err := bindExpr(s.Having, sc)
		if err != nil {
			return nil, err
		}
		plan = plan.Where(pred)
	}

	// ---- Final projection ----
	if s.Star {
		return plan, nil
	}
	return bindProjection(s, plan, sc, len(aggs) > 0)
}

// resolveSide resolves an ON pair where either side may syntactically be
// first: pair.L should belong to the accumulated left scope and pair.R to
// the joined source, but users also write them reversed.
func resolveSide(left, right *scope, a, b ColRef) ([2]string, error) {
	if l, err := left.resolve(a); err == nil {
		if r, err2 := right.resolve(b); err2 == nil {
			return [2]string{l, r}, nil
		}
	}
	if l, err := left.resolve(b); err == nil {
		if r, err2 := right.resolve(a); err2 == nil {
			return [2]string{l, r}, nil
		}
	}
	return [2]string{}, fmt.Errorf("tsql: cannot resolve ON %s = %s", a, b)
}

func bindSource(src *Source, cat Catalog) (*temporal.Plan, error) {
	var plan *temporal.Plan
	if src.Sub != nil {
		sub, err := bindQuery(src.Sub, cat)
		if err != nil {
			return nil, err
		}
		plan = sub
	} else {
		schema, ok := cat[src.Name]
		if !ok {
			return nil, fmt.Errorf("tsql: unknown stream %q", src.Name)
		}
		plan = temporal.Scan(src.Name, schema)
	}
	if src.Window != nil {
		if src.Hop != nil {
			plan = plan.WithHop(*src.Window, *src.Hop)
		} else {
			plan = plan.WithWindow(*src.Window)
		}
	}
	if src.Shift != nil {
		plan = plan.ShiftLifetime(*src.Shift)
	}
	if src.Point {
		plan = plan.ToPoint()
	}
	return plan, nil
}

func bindAggregate(s *SelectStmt, agg ProjExpr, plan *temporal.Plan, sc *scope) (*temporal.Plan, error) {
	name := agg.Alias
	if name == "" {
		name = agg.Agg
	}
	applyAgg := func(g *temporal.Plan) (*temporal.Plan, error) {
		if s.Window != nil {
			if s.Hop != nil {
				g = g.WithHop(*s.Window, *s.Hop)
			} else {
				g = g.WithWindow(*s.Window)
			}
		}
		var col string
		if agg.AggCol.Name != "" {
			c, err := sc.resolve(agg.AggCol)
			if err != nil {
				return nil, err
			}
			col = c
		}
		switch agg.Agg {
		case "COUNT":
			return g.Count(name), nil
		case "SUM":
			return g.Sum(col, name), nil
		case "MIN":
			return g.Min(col, name), nil
		case "MAX":
			return g.Max(col, name), nil
		case "AVG":
			return g.Avg(col, name), nil
		}
		return nil, fmt.Errorf("tsql: unknown aggregate %s", agg.Agg)
	}

	if len(s.GroupBy) == 0 {
		return applyAgg(plan)
	}
	keys := make([]string, len(s.GroupBy))
	for i, c := range s.GroupBy {
		col, err := sc.resolve(ColRef{Name: c})
		if err != nil {
			return nil, err
		}
		keys[i] = col
	}
	var bindErr error
	out := plan.GroupApply(keys, func(g *temporal.Plan) *temporal.Plan {
		sub, err := applyAgg(g)
		if err != nil {
			bindErr = err
			return g.Count(name) // placeholder; bindErr aborts below
		}
		return sub
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}

func bindProjection(s *SelectStmt, plan *temporal.Plan, sc *scope, hasAgg bool) (*temporal.Plan, error) {
	schema := plan.Schema()
	var projs []temporal.Projection
	identity := schema.Len() == len(s.Projs)
	for i, pr := range s.Projs {
		var src string
		if pr.Agg != "" {
			// The aggregate column already carries its output name.
			src = pr.Alias
			if src == "" {
				src = pr.Agg
			}
			if !schema.Has(src) {
				return nil, fmt.Errorf("tsql: internal: aggregate column %q missing from %s", src, schema)
			}
			projs = append(projs, temporal.Keep(src))
			if !(i < schema.Len() && schema.Field(i).Name == src) {
				identity = false
			}
			continue
		}
		col, err := sc.resolve(pr.Col)
		if err != nil {
			if hasAgg && pr.Col.Qualifier == "" && schema.Has(pr.Col.Name) {
				// Group keys keep their names through GroupApply.
				col = pr.Col.Name
			} else {
				return nil, err
			}
		}
		out := pr.Alias
		if out == "" {
			out = pr.Col.Name
		}
		projs = append(projs, temporal.Rename(col, out))
		if !(i < schema.Len() && schema.Field(i).Name == out && col == out) {
			identity = false
		}
	}
	if identity {
		return plan, nil
	}
	return plan.Project(projs...), nil
}

func bindExpr(e Expr, sc *scope) (temporal.Predicate, error) {
	switch x := e.(type) {
	case *AndExpr:
		l, err := bindExpr(x.L, sc)
		if err != nil {
			return temporal.Predicate{}, err
		}
		r, err := bindExpr(x.R, sc)
		if err != nil {
			return temporal.Predicate{}, err
		}
		return temporal.And(l, r), nil
	case *OrExpr:
		l, err := bindExpr(x.L, sc)
		if err != nil {
			return temporal.Predicate{}, err
		}
		r, err := bindExpr(x.R, sc)
		if err != nil {
			return temporal.Predicate{}, err
		}
		return temporal.Or(l, r), nil
	case *NotExpr:
		inner, err := bindExpr(x.E, sc)
		if err != nil {
			return temporal.Predicate{}, err
		}
		return temporal.Not(inner), nil
	case *CmpExpr:
		return bindCmp(x, sc)
	default:
		return temporal.Predicate{}, fmt.Errorf("tsql: unknown expression %T", e)
	}
}

func bindCmp(c *CmpExpr, sc *scope) (temporal.Predicate, error) {
	col, err := sc.resolve(c.Col)
	if err != nil {
		return temporal.Predicate{}, err
	}
	kind := sc.schema.Field(sc.schema.MustIndex(col)).Kind
	lit := c.Lit
	// Widen int literals against float columns.
	if kind == temporal.KindFloat && lit.Kind == temporal.KindInt {
		lit = Lit{Kind: temporal.KindFloat, F: float64(lit.I)}
	}
	if lit.Kind != kind {
		return temporal.Predicate{}, fmt.Errorf("tsql: comparing %s column %q with %s literal", kind, col, lit.Kind)
	}
	if c.Abs && kind != temporal.KindFloat && kind != temporal.KindInt {
		return temporal.Predicate{}, fmt.Errorf("tsql: ABS over non-numeric column %q", col)
	}
	op, abs, v := c.Op, c.Abs, lit.value()
	desc := fmt.Sprintf("%s %s %s", col, op, v)
	if abs {
		desc = fmt.Sprintf("ABS(%s) %s %s", col, op, v)
	}
	return temporal.FnPred(desc, func(vals []temporal.Value) bool {
		x := vals[0]
		if abs {
			switch x.Kind() {
			case temporal.KindInt:
				if i := x.AsInt(); i < 0 {
					x = temporal.Int(-i)
				}
			case temporal.KindFloat:
				if f := x.AsFloat(); f < 0 {
					x = temporal.Float(-f)
				}
			}
		}
		cmp := x.Compare(v)
		switch op {
		case "=":
			return cmp == 0
		case "!=":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		}
		return false
	}, col), nil
}
