package tsql

import (
	"fmt"
	"strconv"
	"strings"

	"timr/internal/temporal"
)

// Parse turns StreamSQL text into an AST.
func Parse(src string) (Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %s, found %q", describe(kind, text), p.cur().text)
}

func describe(kind tokenKind, text string) string {
	if text != "" {
		return fmt.Sprintf("%q", text)
	}
	switch kind {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokDuration:
		return "duration"
	default:
		return "token"
	}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("tsql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// parseQuery := select (UNION select)*
func (p *parser) parseQuery() (Query, error) {
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	var q Query = left
	for p.accept(tokKeyword, "UNION") {
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q = &UnionStmt{Left: q, Right: right}
	}
	return q, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.accept(tokSymbol, "*") {
		s.Star = true
	} else {
		for {
			pr, err := p.parseProj()
			if err != nil {
				return nil, err
			}
			s.Projs = append(s.Projs, pr)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	src, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	s.From = src
	for p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "ANTIJOIN") {
		jc, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, jc)
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, t.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "WINDOW") {
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		s.Window = &d
		if p.accept(tokKeyword, "HOP") {
			h, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			s.Hop = &h
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept(tokKeyword, "PARTITION") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			s.Partition = append(s.Partition, t.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseProj() (ProjExpr, error) {
	var pr ProjExpr
	if t := p.cur(); t.kind == tokKeyword && isAggName(t.text) {
		p.next()
		pr.Agg = t.text
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return pr, err
		}
		if p.accept(tokSymbol, "*") {
			if pr.Agg != "COUNT" {
				return pr, p.errf("%s(*) is not valid; only COUNT(*)", pr.Agg)
			}
		} else {
			c, err := p.parseColRef()
			if err != nil {
				return pr, err
			}
			pr.AggCol = c
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return pr, err
		}
	} else {
		c, err := p.parseColRef()
		if err != nil {
			return pr, err
		}
		pr.Col = c
	}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return pr, err
		}
		pr.Alias = t.text
	}
	return pr, nil
}

func isAggName(s string) bool {
	switch s {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func (p *parser) parseColRef() (ColRef, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: t.text, Name: t2.text}, nil
	}
	return ColRef{Name: t.text}, nil
}

func (p *parser) parseSource() (Source, error) {
	var s Source
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseQuery()
		if err != nil {
			return s, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return s, err
		}
		s.Sub = sub
	} else {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return s, err
		}
		s.Name = t.text
	}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return s, err
		}
		s.Alias = t.text
	}
	// Per-source lifetime clauses, in any order.
	for {
		switch {
		case p.accept(tokKeyword, "WINDOW"):
			d, err := p.parseDuration()
			if err != nil {
				return s, err
			}
			s.Window = &d
			if p.accept(tokKeyword, "HOP") {
				h, err := p.parseDuration()
				if err != nil {
					return s, err
				}
				s.Hop = &h
			}
		case p.accept(tokKeyword, "SHIFT"):
			d, err := p.parseDuration()
			if err != nil {
				return s, err
			}
			s.Shift = &d
		case p.accept(tokKeyword, "POINT"):
			s.Point = true
		default:
			return s, nil
		}
	}
}

func (p *parser) parseJoin() (JoinClause, error) {
	var jc JoinClause
	if p.accept(tokKeyword, "ANTIJOIN") {
		jc.Anti = true
	} else if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
		return jc, err
	}
	src, err := p.parseSource()
	if err != nil {
		return jc, err
	}
	jc.Src = src
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return jc, err
	}
	for {
		l, err := p.parseColRef()
		if err != nil {
			return jc, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return jc, err
		}
		r, err := p.parseColRef()
		if err != nil {
			return jc, err
		}
		jc.On = append(jc.On, ColPair{L: l, R: r})
		if !p.accept(tokKeyword, "AND") {
			break
		}
	}
	return jc, nil
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	c := &CmpExpr{}
	if p.accept(tokKeyword, "ABS") {
		c.Abs = true
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		c.Col = col
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	} else {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		c.Col = col
	}
	op := p.cur()
	switch op.text {
	case "=", "!=", "<", "<=", ">", ">=":
		p.next()
		c.Op = op.text
	default:
		return nil, p.errf("expected comparison operator, found %q", op.text)
	}
	lit, err := p.parseLit()
	if err != nil {
		return nil, err
	}
	c.Lit = lit
	return c, nil
}

func (p *parser) parseLit() (Lit, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Lit{}, p.errf("bad float %q", t.text)
			}
			return Lit{Kind: temporal.KindFloat, F: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Lit{}, p.errf("bad integer %q", t.text)
		}
		return Lit{Kind: temporal.KindInt, I: i}, nil
	case t.kind == tokDuration:
		p.next()
		d, err := parseDurationText(t.text)
		if err != nil {
			return Lit{}, err
		}
		return Lit{Kind: temporal.KindInt, I: int64(d)}, nil
	case t.kind == tokString:
		p.next()
		return Lit{Kind: temporal.KindString, S: t.text}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return Lit{Kind: temporal.KindBool, B: t.text == "TRUE"}, nil
	default:
		return Lit{}, p.errf("expected literal, found %q", t.text)
	}
}

func (p *parser) parseDuration() (temporal.Time, error) {
	t := p.cur()
	neg := false
	if t.kind == tokSymbol && t.text == "-" {
		p.next()
		neg = true
		t = p.cur()
	}
	if t.kind != tokDuration && t.kind != tokNumber {
		return 0, p.errf("expected duration (e.g. 6h, 15m, 500ms), found %q", t.text)
	}
	p.next()
	var d temporal.Time
	var err error
	if t.kind == tokNumber {
		var i int64
		i, err = strconv.ParseInt(t.text, 10, 64)
		d = temporal.Time(i) // raw ticks (ms)
	} else {
		d, err = parseDurationText(t.text)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		d = -d
	}
	return d, nil
}

// parseDurationText converts "500ms", "30s", "15m", "6h", "2d" — negative
// values come from a preceding '-' token handled by the caller or
// embedded for literals like "-5m" lexed as one token.
func parseDurationText(s string) (temporal.Time, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	unit := temporal.Time(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, num = temporal.Tick, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = temporal.Second, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		unit, num = temporal.Minute, s[:len(s)-1]
	case strings.HasSuffix(s, "h"):
		unit, num = temporal.Hour, s[:len(s)-1]
	case strings.HasSuffix(s, "d"):
		unit, num = temporal.Day, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("tsql: bad duration %q", s)
	}
	d := temporal.Time(v) * unit
	if neg {
		d = -d
	}
	return d, nil
}
