// Package tsql implements a StreamSQL-style textual query language over
// the temporal engine — the second user surface the paper names ("Users
// write temporal queries in the DSMS language... LINQ (the code for
// StreamSQL is similar)", §III-A). Queries compile to the same
// temporal.Plan the builder produces, so everything TiMR does (annotate,
// optimize, fragment, distribute) applies unchanged.
//
// The dialect covers the paper's workload:
//
//	SELECT AdId, COUNT(*) AS Cnt
//	FROM clicks
//	WHERE StreamId = 1
//	GROUP BY AdId
//	WINDOW 6h
//	HAVING Cnt > 100
//
//	SELECT l.UserId, r.Keyword, r.KwCount
//	FROM labeled AS l
//	JOIN (SELECT UserId, KwAdId AS Keyword, COUNT(*) AS KwCount
//	      FROM clean WHERE StreamId = 2
//	      GROUP BY UserId, Keyword WINDOW 6h) AS r
//	ON l.UserId = r.UserId
//
//	SELECT ... UNION SELECT ...
//	... ANTIJOIN src ON a = b          (AntiSemiJoin)
//	FROM clicks WINDOW 5m SHIFT -5m    (per-source lifetime clauses)
//	WINDOW 6h HOP 15m                  (hopping windows)
//	PARTITION BY UserId                (explicit exchange annotation)
package tsql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber   // integer or float literal
	tokDuration // number with a time-unit suffix: 500ms, 30s, 15m, 6h, 2d
	tokString   // 'quoted'
	tokSymbol   // ( ) , . * = < > <= >= != -
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"WINDOW": true, "HOP": true, "SHIFT": true, "HAVING": true, "AS": true,
	"JOIN": true, "ANTIJOIN": true, "ON": true, "UNION": true, "AND": true,
	"OR": true, "NOT": true, "COUNT": true, "SUM": true, "MIN": true,
	"MAX": true, "AVG": true, "PARTITION": true, "POINT": true, "TRUE": true,
	"FALSE": true, "ABS": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front (queries are short).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber(start)
		case isIdentStart(c):
			l.lexIdent(start)
		case strings.ContainsRune("(),.*=", rune(c)):
			l.pos++
			l.emit(tokSymbol, string(c), start)
		case c == '<' || c == '>' || c == '!':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.emit(tokSymbol, l.src[start:l.pos], start)
		case c == '-':
			// A minus sign can start a negative literal.
			l.pos++
			if l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.lexNumber(start)
			} else {
				l.emit(tokSymbol, "-", start)
			}
		default:
			return nil, fmt.Errorf("tsql: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// -- comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.emit(tokKeyword, up, start)
		return
	}
	l.emit(tokIdent, word, start)
}

func (l *lexer) lexNumber(start int) {
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' &&
		l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1])) {
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	// Duration suffix?
	rest := l.src[l.pos:]
	for _, suf := range []string{"ms", "s", "m", "h", "d"} {
		if strings.HasPrefix(rest, suf) {
			after := l.pos + len(suf)
			if after >= len(l.src) || !isIdentPart(l.src[after]) {
				l.pos = after
				l.emit(tokDuration, l.src[start:l.pos], start)
				return
			}
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("tsql: unterminated string at %d", start)
	}
	text := l.src[start+1 : l.pos]
	l.pos++ // closing quote
	l.emit(tokString, text, start)
	return nil
}
