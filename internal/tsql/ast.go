package tsql

import (
	"timr/internal/temporal"
)

// Query is a parsed statement: a SELECT or a UNION of two queries.
type Query interface{ isQuery() }

// UnionStmt merges two queries with identical output schemas.
type UnionStmt struct {
	Left, Right Query
}

func (*UnionStmt) isQuery() {}

// SelectStmt is one SELECT block.
type SelectStmt struct {
	Projs   []ProjExpr
	Star    bool // SELECT *
	From    Source
	Joins   []JoinClause
	Where   Expr
	GroupBy []string
	// Window/Hop attach to the aggregate (or, without aggregates, to the
	// output lifetimes).
	Window, Hop *temporal.Time
	Having      Expr
	// Partition is an explicit PARTITION BY annotation: a logical
	// exchange on the inputs (TiMR's hint mechanism, §III-A.2).
	Partition []string
}

func (*SelectStmt) isQuery() {}

// Source is a FROM or JOIN operand: a named stream or a subquery, with
// optional per-source lifetime clauses.
type Source struct {
	Name  string
	Sub   Query
	Alias string
	// Lifetime clauses applied to this source's events, in order:
	// WINDOW w [HOP h] | SHIFT d | POINT.
	Window, Hop, Shift *temporal.Time
	Point              bool
}

// JoinClause joins (or anti-semi-joins) another source onto the left side.
type JoinClause struct {
	Anti bool
	Src  Source
	On   []ColPair
}

// ColPair is one equality of an ON clause: left column = right column.
type ColPair struct {
	L, R ColRef
}

// ColRef is a possibly alias-qualified column reference.
type ColRef struct {
	Qualifier string // "" if unqualified
	Name      string
}

func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// ProjExpr is one SELECT list item.
type ProjExpr struct {
	Col    ColRef // when Agg == ""
	Agg    string // COUNT, SUM, MIN, MAX, AVG; "" for plain columns
	AggCol ColRef // argument of the aggregate ("" Name for COUNT(*))
	Alias  string
}

// Expr is a boolean predicate tree.
type Expr interface{ isExpr() }

// CmpExpr compares a column (optionally |column|) with a literal.
type CmpExpr struct {
	Col ColRef
	Abs bool   // ABS(col) op lit
	Op  string // = != < <= > >=
	Lit Lit
}

func (*CmpExpr) isExpr() {}

// AndExpr / OrExpr / NotExpr combine predicates.
type AndExpr struct{ L, R Expr }
type OrExpr struct{ L, R Expr }
type NotExpr struct{ E Expr }

func (*AndExpr) isExpr() {}
func (*OrExpr) isExpr()  {}
func (*NotExpr) isExpr() {}

// Lit is a literal value.
type Lit struct {
	Kind temporal.Kind
	I    int64
	F    float64
	S    string
	B    bool
}

func (l Lit) value() temporal.Value {
	switch l.Kind {
	case temporal.KindInt:
		return temporal.Int(l.I)
	case temporal.KindFloat:
		return temporal.Float(l.F)
	case temporal.KindString:
		return temporal.String(l.S)
	case temporal.KindBool:
		return temporal.Bool(l.B)
	}
	return temporal.Null
}
