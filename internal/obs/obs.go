// Package obs is a lightweight, allocation-conscious observability layer
// for the engine, the cluster simulator, and the streaming runtime:
// counters, gauges, and duration histograms organised into named scopes,
// with deterministic snapshots renderable as a text table.
//
// Design constraints, in order:
//
//   - Nil-safety. Every method works on a nil *Scope, *Counter, *Gauge,
//     and *Histogram, doing nothing (or returning zero). Instrumented
//     code threads an optional scope through unconditionally; when
//     observability is off the scope is nil and the hot path costs one
//     predictable nil check per call — no branching at call sites, no
//     interface indirection.
//   - Race-freedom. Metric updates are single atomic operations (reducers
//     run on a worker pool, streaming partitions on goroutines), so the
//     whole package is clean under `go test -race`. Metric *creation*
//     (get-or-create by name) takes a mutex, but instrumented code
//     resolves handles once at wiring time, not per event.
//   - Determinism. Snapshot output is sorted by scope path then metric
//     name, so tests can pin exact tables and repeated snapshots of a
//     quiesced system are byte-identical.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter (events in, rows
// shuffled, barriers released, ...).
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value (buffer depth, live state size). It
// supports both last-write (Set) and high-watermark (SetMax) semantics;
// instrumented code typically tracks the high watermark so a post-run
// snapshot still shows the peak.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is greater than the current value.
// No-op on a nil gauge.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value (zero for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: values below histLinear land in their own
// exact bucket; above that, each power of two is cut into histLinear
// linear sub-buckets (an HDR-histogram-style log-linear layout), so the
// relative quantile error is bounded by 1/histLinear = 6.25% while the
// whole table stays a flat fixed-size array of atomics — one Add per
// observation, no allocation, no locks.
const (
	histSubBits = 4
	histLinear  = 1 << histSubBits                           // 16 exact buckets + 16 sub-buckets per octave
	histBuckets = histLinear + (63-histSubBits)<<histSubBits // exps histSubBits..62
)

// histBucket maps a non-negative nanosecond value to its bucket index.
func histBucket(ns int64) int {
	if ns < histLinear {
		return int(ns)
	}
	e := int64(bits.Len64(uint64(ns))) - 1 // 2^e <= ns < 2^(e+1), e >= histSubBits
	sub := (ns >> (e - histSubBits)) & (histLinear - 1)
	return int((e-histSubBits)<<histSubBits) + histLinear + int(sub)
}

// histValue returns the representative value (bucket midpoint) of a
// bucket index — the value Quantile reports for ranks landing there.
func histValue(b int) int64 {
	if b < histLinear {
		return int64(b)
	}
	rest := int64(b - histLinear)
	e := rest>>histSubBits + histSubBits
	sub := rest & (histLinear - 1)
	lo := int64(1)<<e + sub<<(e-histSubBits)
	return lo + int64(1)<<(e-histSubBits)/2
}

// Histogram records a distribution of durations: count, sum, min, max,
// plus a fixed log-linear bucket table dense enough to answer quantile
// reads (p50/p99 latency is a first-class serving metric) within a
// bounded ~6% relative error. Updates stay single atomic operations per
// field, so the histogram remains race-free and allocation-free on the
// observation path.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; valid only when count > 0
	max   atomic.Int64 // nanoseconds
	bkt   [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if h.count.Add(1) == 1 {
		// First observation seeds min; racing observers converge via
		// the CAS loops below.
		h.min.Store(ns)
	}
	h.sum.Add(ns)
	h.bkt[histBucket(ns)].Add(1)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Quantile returns the q-quantile (0 < q <= 1) of the observed
// distribution, accurate to the bucket resolution (6.25% relative, exact
// below 16ns). It walks the bucket table with individually-atomic reads —
// the same individually-(not mutually-)consistent snapshot semantics as
// Counter and Gauge — and returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= total {
		// The top rank is the observed maximum exactly — p100 should
		// report the recorded extreme, not its bucket midpoint.
		return time.Duration(h.max.Load())
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.bkt[b].Load()
		if cum >= rank {
			v := histValue(b)
			// Clamp to the observed extremes so a single-bucket
			// distribution reports its true min/max, not the midpoint.
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			if mn := h.min.Load(); v < mn {
				v = mn
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}

// Count returns the number of observations (zero for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (zero for a nil histogram).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest observed duration (zero for a nil histogram).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest observed duration (zero when empty or nil).
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Scope is a named namespace of metrics. Scopes nest (Child), and the
// full dotted path identifies each metric in snapshots:
//
//	timr → cluster → stage.frag0 → counter "input_rows"
//	    ⇒ "timr.cluster.stage.frag0  input_rows"
//
// Get-or-create is mutex-protected: concurrent reducers resolving the
// same names receive the same handles, so per-operator metrics aggregate
// across partitions of the same fragment.
type Scope struct {
	name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	children map[string]*Scope
}

// New returns a fresh root scope with the given name.
func New(name string) *Scope { return &Scope{name: name} }

// Name returns the scope's own (unqualified) name.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns the sub-scope with the given name, creating it on first
// use. Returns nil on a nil scope, so instrumentation wiring can thread
// children unconditionally.
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = make(map[string]*Scope)
	}
	c, ok := s.children[name]
	if !ok {
		c = &Scope{name: name}
		s.children[name] = c
	}
	return c
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a usable no-op handle) on a nil scope.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a usable no-op handle) on a nil scope.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gauges == nil {
		s.gauges = make(map[string]*Gauge)
	}
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a usable no-op handle) on a nil scope.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h, ok := s.hists[name]
	if !ok {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Kind distinguishes metric types in snapshots.
type Kind string

// Metric kinds appearing in Point.Kind.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "hist"
)

// Point is one metric reading in a snapshot. Value carries the
// counter/gauge value; histograms use Count/Sum/Min/Max/P50/P99 instead.
type Point struct {
	Scope string // dotted scope path, root included
	Name  string
	Kind  Kind
	Value int64

	Count         int64 // histogram only
	Sum, Min, Max time.Duration
	P50, P99      time.Duration // bucket-resolution quantiles
}

// Snapshot walks the scope tree and returns every metric, sorted by
// scope path then metric name. The result is deterministic for a
// quiesced system; concurrent updates during the walk yield values that
// are individually (not mutually) consistent, which is all a monitoring
// read needs. Nil scopes snapshot to nil.
func (s *Scope) Snapshot() []Point {
	if s == nil {
		return nil
	}
	var pts []Point
	s.collect(s.name, &pts)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Scope != pts[j].Scope {
			return pts[i].Scope < pts[j].Scope
		}
		return pts[i].Name < pts[j].Name
	})
	return pts
}

func (s *Scope) collect(path string, pts *[]Point) {
	s.mu.Lock()
	for n, c := range s.counters {
		*pts = append(*pts, Point{Scope: path, Name: n, Kind: KindCounter, Value: c.Value()})
	}
	for n, g := range s.gauges {
		*pts = append(*pts, Point{Scope: path, Name: n, Kind: KindGauge, Value: g.Value()})
	}
	for n, h := range s.hists {
		*pts = append(*pts, Point{
			Scope: path, Name: n, Kind: KindHistogram,
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		})
	}
	names := make([]string, 0, len(s.children))
	for n := range s.children {
		names = append(names, n)
	}
	children := make([]*Scope, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		children = append(children, s.children[n])
	}
	s.mu.Unlock()
	// Recurse outside the lock: child scopes have independent mutexes
	// and the tree shape only grows, never mutates existing links.
	for _, c := range children {
		c.collect(path+"."+c.name, pts)
	}
}

// Table renders the snapshot as an aligned two-level text table, one
// line per metric:
//
//	scope                     metric        value
//	timr.cluster.stage.frag0  input_rows    20000
//	timr.engine.frag.frag0.op00.Aggregate  events_in  9936
//
// Histograms render as "n=8 sum=12ms avg=1.5ms max=3ms". Empty and nil
// scopes render as an empty string.
func (s *Scope) Table() string {
	pts := s.Snapshot()
	if len(pts) == 0 {
		return ""
	}
	rows := make([][3]string, 0, len(pts)+1)
	rows = append(rows, [3]string{"scope", "metric", "value"})
	for _, p := range pts {
		var v string
		if p.Kind == KindHistogram {
			if p.Count == 0 {
				v = "n=0"
			} else {
				avg := time.Duration(int64(p.Sum) / p.Count)
				v = fmt.Sprintf("n=%d sum=%s avg=%s p50=%s p99=%s max=%s",
					p.Count, round(p.Sum), round(avg), round(p.P50), round(p.P99), round(p.Max))
			}
		} else {
			v = fmt.Sprintf("%d", p.Value)
		}
		rows = append(rows, [3]string{p.Scope, p.Name, v})
	}
	var w [2]int
	for _, r := range rows {
		for i := 0; i < 2; i++ {
			if len(r[i]) > w[i] {
				w[i] = len(r[i])
			}
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", w[0], r[0], w[1], r[1], r[2])
	}
	return b.String()
}

// round trims durations to microsecond precision for table display.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
