package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrent increments from many goroutines must not lose updates and
// must be clean under -race: reducers on the worker pool share metric
// handles for the same fragment.
func TestCounterConcurrent(t *testing.T) {
	root := New("t")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the scope each time: get-or-create must
			// hand every goroutine the same counter.
			c := root.Child("stage").Counter("rows")
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := root.Child("stage").Counter("rows").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	root := New("t")
	g := root.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.SetMax(int64(i*500 + j))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8*500-1 {
		t.Fatalf("gauge max = %d, want %d", got, 8*500-1)
	}
}

func TestHistogram(t *testing.T) {
	root := New("t")
	h := root.Histogram("lat")
	for _, d := range []time.Duration{3 * time.Millisecond, time.Millisecond, 7 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 || h.Sum() != 11*time.Millisecond ||
		h.Min() != time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Fatalf("histogram = n=%d sum=%s min=%s max=%s", h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

// Snapshot order must be deterministic regardless of creation order, and
// repeated snapshots of a quiesced tree must be identical.
func TestSnapshotDeterministic(t *testing.T) {
	root := New("root")
	root.Child("b").Counter("z").Add(2)
	root.Child("b").Counter("a").Add(1)
	root.Child("a").Child("x").Gauge("g").Set(5)
	root.Counter("top").Add(9)
	root.Histogram("h").Observe(time.Millisecond)

	s1, s2 := root.Snapshot(), root.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%v\n%v", s1, s2)
	}
	var got []string
	for _, p := range s1 {
		got = append(got, p.Scope+" "+p.Name)
	}
	want := []string{"root h", "root top", "root.a.x g", "root.b a", "root.b z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot order = %v, want %v", got, want)
	}
	if s1[1].Value != 9 || s1[4].Value != 2 || s1[0].Count != 1 {
		t.Fatalf("snapshot values wrong: %+v", s1)
	}
}

// Everything must be a no-op (and not panic) on nil receivers: that is
// the whole mechanism by which disabled observability costs nothing.
func TestNilSafety(t *testing.T) {
	var s *Scope
	if s.Child("x") != nil || s.Snapshot() != nil || s.Table() != "" || s.Name() != "" {
		t.Fatal("nil scope must yield nil children and empty snapshots")
	}
	c := s.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := s.Gauge("g")
	g.Set(3)
	g.SetMax(4)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := s.Histogram("h")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func TestTable(t *testing.T) {
	root := New("timr")
	root.Child("stage").Counter("rows").Add(42)
	root.Child("stage").Histogram("task_time").Observe(1500 * time.Microsecond)
	tab := root.Table()
	for _, want := range []string{"scope", "timr.stage", "rows", "42", "task_time", "n=1"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	if New("empty").Table() != "" {
		t.Fatal("empty scope must render empty table")
	}
}
