package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrent increments from many goroutines must not lose updates and
// must be clean under -race: reducers on the worker pool share metric
// handles for the same fragment.
func TestCounterConcurrent(t *testing.T) {
	root := New("t")
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve through the scope each time: get-or-create must
			// hand every goroutine the same counter.
			c := root.Child("stage").Counter("rows")
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := root.Child("stage").Counter("rows").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	root := New("t")
	g := root.Gauge("depth")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.SetMax(int64(i*500 + j))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8*500-1 {
		t.Fatalf("gauge max = %d, want %d", got, 8*500-1)
	}
}

func TestHistogram(t *testing.T) {
	root := New("t")
	h := root.Histogram("lat")
	for _, d := range []time.Duration{3 * time.Millisecond, time.Millisecond, 7 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 || h.Sum() != 11*time.Millisecond ||
		h.Min() != time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Fatalf("histogram = n=%d sum=%s min=%s max=%s", h.Count(), h.Sum(), h.Min(), h.Max())
	}
}

// Snapshot order must be deterministic regardless of creation order, and
// repeated snapshots of a quiesced tree must be identical.
func TestSnapshotDeterministic(t *testing.T) {
	root := New("root")
	root.Child("b").Counter("z").Add(2)
	root.Child("b").Counter("a").Add(1)
	root.Child("a").Child("x").Gauge("g").Set(5)
	root.Counter("top").Add(9)
	root.Histogram("h").Observe(time.Millisecond)

	s1, s2 := root.Snapshot(), root.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%v\n%v", s1, s2)
	}
	var got []string
	for _, p := range s1 {
		got = append(got, p.Scope+" "+p.Name)
	}
	want := []string{"root h", "root top", "root.a.x g", "root.b a", "root.b z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot order = %v, want %v", got, want)
	}
	if s1[1].Value != 9 || s1[4].Value != 2 || s1[0].Count != 1 {
		t.Fatalf("snapshot values wrong: %+v", s1)
	}
}

// Everything must be a no-op (and not panic) on nil receivers: that is
// the whole mechanism by which disabled observability costs nothing.
func TestNilSafety(t *testing.T) {
	var s *Scope
	if s.Child("x") != nil || s.Snapshot() != nil || s.Table() != "" || s.Name() != "" {
		t.Fatal("nil scope must yield nil children and empty snapshots")
	}
	c := s.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := s.Gauge("g")
	g.Set(3)
	g.SetMax(4)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := s.Histogram("h")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

// Quantiles must agree with a sorted reference within the bucket
// resolution: exact below 16ns, and within the log-linear bucket's half
// width (≲6.25% relative) above it.
func TestHistogramQuantileVsSortedReference(t *testing.T) {
	cases := []struct {
		name string
		gen  func(i int) int64 // nanoseconds
		n    int
	}{
		{"uniform", func(i int) int64 { return int64(i+1) * 1000 }, 5000},
		{"exactSmall", func(i int) int64 { return int64(i % 16) }, 640},
		{"heavyTail", func(i int) int64 {
			v := int64(100)
			for j := 0; j < i%20; j++ {
				v *= 2
			}
			return v + int64(i%97)
		}, 3000},
		{"constant", func(int) int64 { return 123456 }, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := New("t").Histogram("lat")
			vals := make([]int64, tc.n)
			for i := range vals {
				vals[i] = tc.gen(i)
				h.Observe(time.Duration(vals[i]))
			}
			sortInt64(vals)
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
				rank := int(q*float64(tc.n) + 0.5)
				if rank < 1 {
					rank = 1
				}
				if rank > tc.n {
					rank = tc.n
				}
				want := vals[rank-1]
				got := int64(h.Quantile(q))
				// Bucket resolution: exact for small values, else one
				// sub-bucket of relative width 1/16 (midpoint reported,
				// so half a bucket ≈ 3.2%; allow the full bucket to
				// absorb rank-boundary effects).
				tol := want >> histSubBits
				if tol < 1 {
					tol = 1
				}
				if got < want-tol || got > want+tol {
					t.Fatalf("q=%.2f: got %d, sorted reference %d (tol %d)", q, got, want, tol)
				}
			}
		})
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must read 0")
	}
	h := New("t").Histogram("lat")
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must read 0")
	}
	h.Observe(-time.Second) // clamps to 0
	if h.Quantile(0.5) != 0 || h.Min() != 0 {
		t.Fatal("negative observation must clamp to 0")
	}
	h.Observe(time.Millisecond)
	if got := h.Quantile(1.0); got != time.Millisecond {
		t.Fatalf("p100 = %s, want clamp to observed max 1ms", got)
	}

	// A single observation answers every quantile with itself: the rank
	// clamps to [1, total] at both ends, so q=0 and q=1 included.
	single := New("t").Histogram("one")
	single.Observe(42 * time.Microsecond)
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := single.Quantile(q); got != 42*time.Microsecond {
			t.Fatalf("single observation: Quantile(%v) = %s, want 42µs", q, got)
		}
	}

	// Many observations: q=0 clamps the rank to 1 (the minimum), q=1 to
	// the observed maximum — never below min, never above max, and never
	// a bucket midpoint outside the observed range.
	many := New("t").Histogram("many")
	for i := 1; i <= 100; i++ {
		many.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := many.Quantile(0); got != time.Millisecond {
		t.Fatalf("Quantile(0) = %s, want the observed min 1ms", got)
	}
	if got := many.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("Quantile(1) = %s, want the observed max 100ms", got)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := many.Quantile(q); got < many.Min() || got > many.Max() {
			t.Fatalf("Quantile(%v) = %s outside observed [%s, %s]", q, got, many.Min(), many.Max())
		}
	}
}

// Quantile reads race-free against concurrent observers, with the same
// individually-consistent snapshot semantics as Counter/Gauge, and the
// snapshot Point carries P50/P99.
func TestHistogramQuantileConcurrentSnapshot(t *testing.T) {
	root := New("t")
	h := root.Histogram("lat")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(time.Duration(i%1000+1) * time.Microsecond)
			}
		}()
	}
	for i := 0; i < 200; i++ {
		q := h.Quantile(0.99)
		if q < 0 || q > time.Millisecond+time.Microsecond {
			t.Errorf("p99 out of observed range: %s", q)
			break
		}
		_ = root.Snapshot()
	}
	wg.Wait()
	pts := root.Snapshot()
	if len(pts) != 1 || pts[0].P50 == 0 || pts[0].P99 < pts[0].P50 {
		t.Fatalf("snapshot point missing quantiles: %+v", pts)
	}
}

func sortInt64(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestTable(t *testing.T) {
	root := New("timr")
	root.Child("stage").Counter("rows").Add(42)
	root.Child("stage").Histogram("task_time").Observe(1500 * time.Microsecond)
	tab := root.Table()
	for _, want := range []string{"scope", "timr.stage", "rows", "42", "task_time", "n=1"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	if New("empty").Table() != "" {
		t.Fatal("empty scope must render empty table")
	}
}
