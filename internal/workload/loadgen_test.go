package workload

import (
	"testing"

	"timr/internal/temporal"
)

func loadGenPair(t *testing.T) (*Dataset, *LoadGen) {
	t.Helper()
	d := Generate(smallConfig())
	g := NewLoadGen(d, LoadConfig{Seed: 3, Start: d.Horizon / 2})
	return d, g
}

func TestLoadGenDeterministic(t *testing.T) {
	d, a := loadGenPair(t)
	b := NewLoadGen(d, LoadConfig{Seed: 3, Start: d.Horizon / 2})
	for i := 0; i < 2000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Seq != rb.Seq || ra.Time != rb.Time || ra.UserId != rb.UserId ||
			ra.Search != rb.Search || ra.Keyword != rb.Keyword ||
			ra.AdId != rb.AdId || ra.Clicked != rb.Clicked || len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("request %d diverges: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.Rows {
			if !ra.Rows[j].Equal(rb.Rows[j]) {
				t.Fatalf("request %d row %d diverges", i, j)
			}
		}
	}
}

func TestLoadGenScheduleAndRows(t *testing.T) {
	_, g := loadGenPair(t)
	last := temporal.Time(temporal.MinTime)
	users := map[int64]int{}
	for i := 0; i < 3000; i++ {
		r := g.Next()
		if r.Time <= last {
			t.Fatalf("request %d: arrival times must be strictly increasing (%d after %d)", i, r.Time, last)
		}
		last = r.Time
		users[r.UserId]++
		if r.Search {
			if len(r.Rows) != 0 {
				t.Fatalf("request %d: search carries %d rows", i, len(r.Rows))
			}
			continue
		}
		// Every impression is scoreable: at least one profiled keyword.
		if len(r.Rows) == 0 {
			t.Fatalf("request %d: impression with empty profile was emitted", i)
		}
		seen := map[int64]bool{}
		for _, row := range r.Rows {
			if got := temporal.Time(row[0].AsInt()); got != r.Time {
				t.Fatalf("request %d: row time %d != arrival %d", i, got, r.Time)
			}
			if row[1].AsInt() != r.UserId || row[2].AsInt() != r.AdId || row[3].AsInt() != r.Clicked {
				t.Fatalf("request %d: row disagrees with request header", i)
			}
			kw := row[4].AsInt()
			if seen[kw] {
				t.Fatalf("request %d: keyword %d appears in two rows", i, kw)
			}
			seen[kw] = true
			if row[5].AsInt() < 1 {
				t.Fatalf("request %d: KwCount %d < 1", i, row[5].AsInt())
			}
		}
	}
	if g.Searches == 0 || g.Impressions == 0 {
		t.Fatalf("mix is degenerate: %d searches, %d impressions", g.Searches, g.Impressions)
	}

	// Zipf skew: the single hottest user owns far more than a uniform
	// share of the arrivals.
	hottest := 0
	for _, n := range users {
		if n > hottest {
			hottest = n
		}
	}
	if uniform := 3000 / smallConfig().Users; hottest < 10*uniform {
		t.Fatalf("user skew too flat: hottest user has %d of 3000 (uniform share %d)", hottest, uniform)
	}
}

func TestLoadGenProfileWindowEvicts(t *testing.T) {
	// With a tiny τ and sparse ticks, old searches must fall out of the
	// profile: every row's keyword was searched within (t-τ, t].
	d := Generate(smallConfig())
	tau := temporal.Time(50)
	g := NewLoadGen(d, LoadConfig{Seed: 5, Start: d.Horizon / 2, Tau: tau, TickEvery: 7})
	searched := map[int64][]temporal.Time{} // user -> search times by kw is overkill; track (user,kw)->times
	type key struct {
		u, kw int64
	}
	hist := map[key][]temporal.Time{}
	for i := 0; i < 4000; i++ {
		r := g.Next()
		if r.Search {
			hist[key{r.UserId, r.Keyword}] = append(hist[key{r.UserId, r.Keyword}], r.Time)
			searched[r.UserId] = append(searched[r.UserId], r.Time)
			continue
		}
		for _, row := range r.Rows {
			kw := row[4].AsInt()
			var inWindow int64
			for _, st := range hist[key{r.UserId, kw}] {
				if st > r.Time-tau && st <= r.Time {
					inWindow++
				}
			}
			if inWindow != row[5].AsInt() {
				t.Fatalf("request %d user %d kw %d: KwCount %d, want %d searches in window",
					i, r.UserId, kw, row[5].AsInt(), inWindow)
			}
		}
	}
}
