// Package workload generates synthetic advertising logs in the unified
// schema of the paper's Figure 9 (Time, StreamId, UserId, KwAdId).
//
// The paper evaluates on one week of real Microsoft ad-platform logs
// (terabytes; ~250M users, ~50M keywords), which we cannot obtain. The
// generator substitutes a seeded synthetic equivalent that preserves the
// properties the paper's algorithms exploit:
//
//   - keyword popularity is Zipf-distributed with a long tail, so feature
//     selection must separate signal from popular-but-irrelevant words;
//   - each ad class has planted positively and negatively correlated
//     keywords: searching a positive keyword within the profile window τ
//     multiplies the user's click probability on that ad class (and
//     dampens it for negative keywords) — exactly the behavior-to-click
//     correlation of paper Example 2 and Figures 17–19;
//   - a small fraction of users are bots with enormously inflated search
//     and click rates whose clicks ignore their behavior profile, diluting
//     correlations unless removed (§IV-B.1 reports 0.5% of users causing
//     13% of clicks);
//   - activity follows a diurnal cycle, giving the RunningClickCount
//     example visible periodic trends.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"timr/internal/temporal"
)

// Stream identifiers of the unified schema (paper §III-C.4): "StreamId
// values of 0, 1, and 2 refer to ad impression, ad click, and keyword
// (searches and pageviews) data respectively."
const (
	StreamImpression int64 = 0
	StreamClick      int64 = 1
	StreamKeyword    int64 = 2
)

// UnifiedSchema is the composite BT input schema of Figure 9. Based on
// StreamId, KwAdId holds either a keyword id or an ad id. Ids are int64
// (the paper uses strings; integer ids are an equivalent dense encoding).
func UnifiedSchema() *temporal.Schema {
	return temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "StreamId", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "KwAdId", Kind: temporal.KindInt},
	)
}

// AdIDBase offsets ad ids above every keyword id so the two id spaces of
// the shared KwAdId column never collide.
const AdIDBase int64 = 1 << 40

// Config parameterizes generation. Zero fields take defaults.
type Config struct {
	Users     int
	Keywords  int
	AdClasses int
	Days      int
	Seed      int64

	SearchesPerUserDay      float64
	ImpressionsPerUserDay   float64
	BaseCTR                 float64
	PosLift                 float64 // click-probability multiplier per positive keyword
	NegDamp                 float64 // multiplier per negative keyword (<1)
	PosKeywordsPerAd        int
	NegKeywordsPerAd        int
	InterestKeywordsPerUser int
	BotFraction             float64
	BotRateMultiplier       float64
	Tau                     temporal.Time // profile window for planted correlations
}

// DefaultConfig is a laptop-scale stand-in for the paper's week of logs.
func DefaultConfig() Config {
	return Config{
		Users: 4000, Keywords: 4000, AdClasses: 10, Days: 7, Seed: 1,
		SearchesPerUserDay: 20, ImpressionsPerUserDay: 14,
		BaseCTR: 0.08, PosLift: 4.0, NegDamp: 0.45,
		PosKeywordsPerAd: 8, NegKeywordsPerAd: 8,
		InterestKeywordsPerUser: 6,
		BotFraction:             0.005,
		BotRateMultiplier:       40,
		Tau:                     6 * temporal.Hour,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Users <= 0 {
		c.Users = d.Users
	}
	if c.Keywords <= 0 {
		c.Keywords = d.Keywords
	}
	if c.AdClasses <= 0 {
		c.AdClasses = d.AdClasses
	}
	if c.Days <= 0 {
		c.Days = d.Days
	}
	if c.SearchesPerUserDay <= 0 {
		c.SearchesPerUserDay = d.SearchesPerUserDay
	}
	if c.ImpressionsPerUserDay <= 0 {
		c.ImpressionsPerUserDay = d.ImpressionsPerUserDay
	}
	if c.BaseCTR <= 0 {
		c.BaseCTR = d.BaseCTR
	}
	if c.PosLift <= 0 {
		c.PosLift = d.PosLift
	}
	if c.NegDamp <= 0 {
		c.NegDamp = d.NegDamp
	}
	if c.PosKeywordsPerAd <= 0 {
		c.PosKeywordsPerAd = d.PosKeywordsPerAd
	}
	if c.NegKeywordsPerAd <= 0 {
		c.NegKeywordsPerAd = d.NegKeywordsPerAd
	}
	if c.InterestKeywordsPerUser <= 0 {
		c.InterestKeywordsPerUser = d.InterestKeywordsPerUser
	}
	if c.BotRateMultiplier <= 0 {
		c.BotRateMultiplier = d.BotRateMultiplier
	}
	if c.Tau <= 0 {
		c.Tau = d.Tau
	}
	return c
}

// AdClass is one data-driven ad class with its planted correlations.
type AdClass struct {
	ID   int64
	Name string
	Pos  []int64 // keyword ids positively correlated with clicks
	Neg  []int64 // keyword ids negatively correlated with clicks
}

// Dataset is a generated log with its ground truth.
type Dataset struct {
	Cfg          Config
	Rows         []temporal.Row // unified schema, sorted by Time
	Ads          []AdClass
	KeywordNames map[int64]string
	Bots         map[int64]bool
	Horizon      temporal.Time // [0, Horizon)

	cb *temporal.ColBatch // lazily built columnar view of Rows
}

// Paper-named vocabulary: ad-class names and the keywords of Figures
// 17–19, wired to the matching classes so the z-test reproduction yields
// recognizable tables.
var adClassNames = []string{
	"deodorant", "laptop", "cellphone", "movies", "dieting",
	"games", "travel", "finance", "fitness", "autos",
}

var namedKeywords = map[string][2][]string{
	// name -> {positive keywords, negative keywords}
	"deodorant": {
		{"celebrity", "icarly", "tattoo", "games", "chat", "videos", "hannah", "exam", "music"},
		{"verizon", "construct", "service", "ford", "hotels", "jobless", "pilot", "credit", "craigslist"},
	},
	"laptop": {
		{"dell", "laptops", "computers", "juris", "toshiba", "vostro", "hp"},
		{"pregnant", "stars", "wang", "vera", "dancing", "myspace", "facebook"},
	},
	"cellphone": {
		{"blackberry", "curve", "enable", "tmobile", "phones", "wireless", "att", "verizon"},
		{"recipes", "times", "national", "hotels", "people", "baseball", "porn", "myspace"},
	},
}

// popularIrrelevant are head-of-Zipf keywords that correlate with nothing
// — the words KE-pop wrongly retains ("google, facebook, and msn ...
// were found to be irrelevant to ad clicks", §V-C). The paper's Figure 18
// also plants facebook/myspace as *negative* laptop keywords, so those two
// stay out of this list to keep the ground truth disjoint.
var popularIrrelevant = []string{"google", "msn", "youtube", "yahoo", "weather", "news", "maps", "mail"}

// Generate builds a dataset. Generation is deterministic in Cfg.Seed.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	root := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Cfg:          cfg,
		KeywordNames: make(map[int64]string),
		Bots:         make(map[int64]bool),
		Horizon:      temporal.Time(cfg.Days) * temporal.Day,
	}

	// ---- Vocabulary ----
	// Keyword ids [0, Keywords): low ids are the popular head of the Zipf
	// distribution. Names: popular irrelevant words first (so they are
	// genuinely popular), then the paper's named keywords, then synthetic.
	names := append([]string{}, popularIrrelevant...)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, cls := range adClassNames {
		if kw, ok := namedKeywords[cls]; ok {
			for _, lists := range kw {
				for _, n := range lists {
					if !seen[n] {
						seen[n] = true
						names = append(names, n)
					}
				}
			}
		}
	}
	for i := 0; i < cfg.Keywords; i++ {
		var n string
		if i < len(names) {
			n = names[i]
		} else {
			n = fmt.Sprintf("kw%05d", i)
		}
		d.KeywordNames[int64(i)] = n
	}
	nameToID := make(map[string]int64, cfg.Keywords)
	for id, n := range d.KeywordNames {
		nameToID[n] = id
	}

	// ---- Ad classes with planted correlations ----
	for a := 0; a < cfg.AdClasses; a++ {
		cls := AdClass{ID: AdIDBase + int64(a)}
		if a < len(adClassNames) {
			cls.Name = adClassNames[a]
		} else {
			cls.Name = fmt.Sprintf("adclass%02d", a)
		}
		if kw, ok := namedKeywords[cls.Name]; ok {
			for _, n := range kw[0] {
				cls.Pos = append(cls.Pos, nameToID[n])
			}
			for _, n := range kw[1] {
				cls.Neg = append(cls.Neg, nameToID[n])
			}
		}
		// Top up with mid-popularity synthetic keywords (never the
		// irrelevant head, never another class's keywords).
		taken := map[int64]bool{}
		for _, other := range d.Ads {
			for _, k := range other.Pos {
				taken[k] = true
			}
			for _, k := range other.Neg {
				taken[k] = true
			}
		}
		for _, k := range cls.Pos {
			taken[k] = true
		}
		for _, k := range cls.Neg {
			taken[k] = true
		}
		sample := func(n int, into *[]int64) {
			lo, hi := len(popularIrrelevant), cfg.Keywords/2
			if hi <= lo {
				hi = cfg.Keywords
			}
			// Exhaustion guard: with a small vocabulary the classes can
			// collectively need more keywords than the band holds. Widen to
			// the full tail, then give up rather than redraw forever. The
			// checks burn no RNG draws, so feasible configurations generate
			// the exact same dataset as before.
			free := func() int {
				n := 0
				for k := lo; k < hi; k++ {
					if !taken[int64(k)] {
						n++
					}
				}
				return n
			}
			for len(*into) < n {
				if free() == 0 {
					if hi < cfg.Keywords {
						hi = cfg.Keywords
						continue
					}
					break // vocabulary exhausted: the class gets fewer keywords
				}
				k := int64(lo + root.Intn(hi-lo))
				if !taken[k] {
					taken[k] = true
					*into = append(*into, k)
				}
			}
		}
		sample(cfg.PosKeywordsPerAd, &cls.Pos)
		sample(cfg.NegKeywordsPerAd, &cls.Neg)
		d.Ads = append(d.Ads, cls)
	}

	// Keyword effect index: keyword -> (adIndex -> multiplier).
	type effect struct {
		ad   int
		mult float64
	}
	effects := make(map[int64][]effect)
	for ai, cls := range d.Ads {
		for _, k := range cls.Pos {
			effects[k] = append(effects[k], effect{ad: ai, mult: cfg.PosLift})
		}
		for _, k := range cls.Neg {
			effects[k] = append(effects[k], effect{ad: ai, mult: cfg.NegDamp})
		}
	}

	// ---- Users ----
	zipf := rand.NewZipf(root, 1.2, 4, uint64(cfg.Keywords-1))
	_ = zipf // per-user zipfs below share the exponent; root one unused
	nBots := int(float64(cfg.Users) * cfg.BotFraction)
	for u := 0; u < nBots; u++ {
		d.Bots[int64(u)] = true // low ids are bots; position has no effect
	}

	var rows []temporal.Row
	emit := func(t temporal.Time, stream, user, kwAd int64) {
		rows = append(rows, temporal.Row{
			temporal.Int(t), temporal.Int(stream), temporal.Int(user), temporal.Int(kwAd),
		})
	}

	for u := 0; u < cfg.Users; u++ {
		uid := int64(u)
		rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(u)))
		isBot := d.Bots[uid]

		searchRate := cfg.SearchesPerUserDay
		imprRate := cfg.ImpressionsPerUserDay
		if isBot {
			searchRate *= cfg.BotRateMultiplier
			imprRate *= cfg.BotRateMultiplier
		}

		// Interests: a few keywords this user searches repeatedly —
		// including planted ones, so correlations have persistent users.
		interests := make([]int64, 0, cfg.InterestKeywordsPerUser)
		uzipf := rand.NewZipf(rng, 1.2, 4, uint64(cfg.Keywords-1))
		for i := 0; i < cfg.InterestKeywordsPerUser; i++ {
			if rng.Float64() < 0.5 {
				// Planted keyword of a random ad class.
				cls := d.Ads[rng.Intn(len(d.Ads))]
				pool := cls.Pos
				if rng.Float64() < 0.5 {
					pool = cls.Neg
				}
				interests = append(interests, pool[rng.Intn(len(pool))])
			} else {
				interests = append(interests, int64(uzipf.Uint64()))
			}
		}

		// Searches (sorted by construction of diurnalTimes).
		nSearch := poissonish(rng, searchRate*float64(cfg.Days))
		searchTimes := diurnalTimes(rng, nSearch, d.Horizon)
		searches := make([]struct {
			t  temporal.Time
			kw int64
		}, nSearch)
		for i, t := range searchTimes {
			var kw int64
			switch {
			case isBot:
				kw = int64(rng.Intn(cfg.Keywords))
			case rng.Float64() < 0.6:
				kw = interests[rng.Intn(len(interests))]
			default:
				kw = int64(uzipf.Uint64())
			}
			searches[i].t = t
			searches[i].kw = kw
			emit(t, StreamKeyword, uid, kw)
		}

		// Impressions and clicks.
		nImpr := poissonish(rng, imprRate*float64(cfg.Days))
		imprTimes := diurnalTimes(rng, nImpr, d.Horizon)
		lo := 0
		for _, t := range imprTimes {
			ad := rng.Intn(len(d.Ads))
			emit(t, StreamImpression, uid, d.Ads[ad].ID)

			var p float64
			if isBot {
				// Bot clicks ignore the behavior profile entirely.
				p = 0.3
			} else {
				p = cfg.BaseCTR
				// Profile effect: planted keywords searched in (t-τ, t].
				for lo < len(searches) && searches[lo].t <= t-cfg.Tau {
					lo++
				}
				applied := map[int64]bool{}
				for i := lo; i < len(searches) && searches[i].t <= t; i++ {
					kw := searches[i].kw
					if applied[kw] {
						continue
					}
					applied[kw] = true
					for _, e := range effects[kw] {
						if e.ad == ad {
							p *= e.mult
						}
					}
				}
				if p > 0.9 {
					p = 0.9
				}
			}
			if rng.Float64() < p {
				// Clicks land within the paper's d = 5 minute non-click
				// detection window after the impression.
				ct := t + 1 + temporal.Time(rng.Int63n(4*temporal.Minute))
				if ct >= d.Horizon {
					ct = d.Horizon - 1
				}
				emit(ct, StreamClick, uid, d.Ads[ad].ID)
			}
		}
	}

	sort.SliceStable(rows, func(i, j int) bool { return rows[i][0].AsInt() < rows[j][0].AsInt() })
	d.Rows = rows
	return d
}

// poissonish draws an approximately Poisson count (normal approximation
// above 30 for speed, exact inversion below).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// diurnalTimes draws n sorted timestamps over [0, horizon) with a
// day-night activity cycle (peak mid-day, trough at night).
func diurnalTimes(rng *rand.Rand, n int, horizon temporal.Time) []temporal.Time {
	out := make([]temporal.Time, 0, n)
	for len(out) < n {
		t := temporal.Time(rng.Int63n(int64(horizon)))
		tod := float64(t%temporal.Day) / float64(temporal.Day)
		w := 0.55 + 0.45*math.Sin(2*math.Pi*(tod-0.25))
		if rng.Float64() < w {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ColBatch returns the generated log as a columnar batch — the
// decode-once ingest shape the mapreduce columnar fast path consumes.
// Built lazily on first use and cached; rows are already Time-sorted,
// so the batch is ordered by every TiMR stage's run key. Callers must
// treat it (like Rows) as immutable.
func (d *Dataset) ColBatch() *temporal.ColBatch {
	if d.cb == nil {
		d.cb = temporal.ColBatchFromRows(d.Rows, UnifiedSchema().Len())
	}
	return d.cb
}

// Events converts the dataset rows to point events for direct engine runs.
func (d *Dataset) Events() []temporal.Event {
	return temporal.RowsToPointEvents(d.Rows, 0)
}

// SplitHalves splits rows at the time midpoint into train and test halves
// ("We split the dataset into training data and test data equally", §V-A).
func (d *Dataset) SplitHalves() (train, test []temporal.Row) {
	mid := d.Horizon / 2
	i := sort.Search(len(d.Rows), func(i int) bool { return d.Rows[i][0].AsInt() >= mid })
	return d.Rows[:i], d.Rows[i:]
}

// DayRows returns the rows of one calendar day ([day·Day, (day+1)·Day)),
// sliced out of the Time-sorted log — the per-day ingest unit of the
// incremental BT refresher. The slice aliases d.Rows; treat it as
// immutable.
func (d *Dataset) DayRows(day int) []temporal.Row {
	lo := temporal.Time(day) * temporal.Day
	hi := lo + temporal.Day
	i := sort.Search(len(d.Rows), func(i int) bool { return d.Rows[i][0].AsInt() >= int64(lo) })
	j := sort.Search(len(d.Rows), func(j int) bool { return d.Rows[j][0].AsInt() >= int64(hi) })
	return d.Rows[i:j]
}

// AdByName finds an ad class by its name.
func (d *Dataset) AdByName(name string) (AdClass, bool) {
	for _, a := range d.Ads {
		if a.Name == name {
			return a, true
		}
	}
	return AdClass{}, false
}

// CountStream tallies rows of one stream id (diagnostics and tests).
func (d *Dataset) CountStream(stream int64) int {
	n := 0
	for _, r := range d.Rows {
		if r[1].AsInt() == stream {
			n++
		}
	}
	return n
}
