package workload

import (
	"math/rand"

	"timr/internal/temporal"
)

// Open-loop serving load generator.
//
// The serve tier (internal/serve, `timr serve`) scores arriving ad
// impressions against the trained BT models through ScorePlan, whose
// left input is reduced-UBP feature rows. A real frontend would reduce
// each impression against the user's live behavior profile; the
// generator plays both roles: it maintains a per-user sliding-τ search
// history and emits, for every impression, the TrainSchema-shaped
// feature rows (Time, UserId, AdId, Clicked, Keyword, KwCount) that the
// reducer would produce. Searches and impressions interleave on one
// deterministic arrival schedule, and users are drawn Zipf-skewed so a
// hot head of users concentrates load on few partitions — the imbalance
// the elastic placement policy exists to absorb.
//
// The generator is open-loop: arrival times are fixed up front
// (Seq → Start + Seq·TickEvery in event time; the serve tier maps
// sequence numbers to wall-clock instants at its configured rate) and
// never slow down because the server lags, so queueing delay shows up
// in the measured latencies instead of being coordinated away.

// LoadConfig parameterizes a LoadGen. Zero fields take defaults.
type LoadConfig struct {
	Seed  int64
	Users int // active user population (default: dataset's Cfg.Users)

	// ZipfS is the skew exponent of the user popularity distribution
	// (must be > 1; default 1.2, matching the dataset's keyword skew).
	ZipfS float64

	// SearchFraction of arrivals are searches — profile updates that
	// produce no score request (default 0.4). Impressions make up the
	// rest; a user with an empty profile always searches first, so every
	// emitted impression is scoreable.
	SearchFraction float64

	// Tau is the profile window τ (default: the dataset's Cfg.Tau).
	Tau temporal.Time

	// Start is the event time of the first arrival. Serving joins
	// against models trained on an earlier period, so Start must lie
	// inside the models' validity (e.g. Params.TrainPeriod).
	Start temporal.Time

	// TickEvery is the event-time gap between consecutive arrivals
	// (default 1 tick). Each arrival owns a distinct timestamp, which is
	// what lets the serve tier key per-impression latency by Time.
	TickEvery temporal.Time
}

func (c LoadConfig) withDefaults(d *Dataset) LoadConfig {
	if c.Users <= 0 {
		c.Users = d.Cfg.Users
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.SearchFraction <= 0 {
		c.SearchFraction = 0.4
	}
	if c.Tau <= 0 {
		c.Tau = d.Cfg.Tau
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 1
	}
	return c
}

// Request is one generated arrival. Searches update the user's profile
// and carry no rows; impressions carry the feature rows to feed
// ScorePlan's reduced-UBP input.
type Request struct {
	Seq    int
	Time   temporal.Time // unique per request: Start + Seq·TickEvery
	UserId int64
	Search bool

	Keyword int64 // the searched keyword (Search only)

	AdId    int64          // the scored ad (impressions only)
	Clicked int64          // planted ground-truth outcome (impressions only)
	Rows    []temporal.Row // TrainSchema rows, one per profiled keyword
}

// LoadGen produces the deterministic arrival sequence. Determinism is
// in (dataset, config, call order): two generators over the same inputs
// yield byte-identical request streams, which is what makes serve
// benchmarks and the migration differential reproducible.
type LoadGen struct {
	cfg  LoadConfig
	ads  []AdClass
	eff  map[int64][]kwEffect
	kws  int
	base float64 // BaseCTR
	cap_ float64 // click-probability cap

	root  *rand.Rand
	uzipf *rand.Zipf
	users map[int64]*userState
	seq   int

	// Running tallies, for serve reports.
	Searches    int
	Impressions int
	RowsEmitted int
}

type kwEffect struct {
	ad   int64
	mult float64
}

type userState struct {
	rng       *rand.Rand
	kwZipf    *rand.Zipf
	interests []int64
	hist      []searchRec
}

type searchRec struct {
	t  temporal.Time
	kw int64
}

// NewLoadGen builds a generator over a dataset's ground truth: the same
// planted keyword→ad correlations that produced the training log drive
// the serving stream, so model scores separate clicked from non-clicked
// impressions for real reasons.
func NewLoadGen(d *Dataset, cfg LoadConfig) *LoadGen {
	cfg = cfg.withDefaults(d)
	g := &LoadGen{
		cfg: cfg, ads: d.Ads, kws: d.Cfg.Keywords,
		base: d.Cfg.BaseCTR, cap_: 0.9,
		eff:   make(map[int64][]kwEffect),
		root:  rand.New(rand.NewSource(cfg.Seed*7_368_787 + 11)),
		users: make(map[int64]*userState),
	}
	for _, cls := range d.Ads {
		for _, k := range cls.Pos {
			g.eff[k] = append(g.eff[k], kwEffect{ad: cls.ID, mult: d.Cfg.PosLift})
		}
		for _, k := range cls.Neg {
			g.eff[k] = append(g.eff[k], kwEffect{ad: cls.ID, mult: d.Cfg.NegDamp})
		}
	}
	g.uzipf = rand.NewZipf(g.root, cfg.ZipfS, 4, uint64(cfg.Users-1))
	return g
}

// user lazily materializes per-user state, seeded off the user id alone
// so the state a user reaches is independent of when it first appears.
func (g *LoadGen) user(uid int64) *userState {
	if st, ok := g.users[uid]; ok {
		return st
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed*2_000_003 + uid))
	st := &userState{rng: rng, kwZipf: rand.NewZipf(rng, 1.2, 4, uint64(g.kws-1))}
	for i := 0; i < 4; i++ {
		if rng.Float64() < 0.5 && len(g.ads) > 0 {
			cls := g.ads[rng.Intn(len(g.ads))]
			pool := cls.Pos
			if rng.Float64() < 0.5 {
				pool = cls.Neg
			}
			if len(pool) > 0 {
				st.interests = append(st.interests, pool[rng.Intn(len(pool))])
				continue
			}
		}
		st.interests = append(st.interests, int64(st.kwZipf.Uint64()))
	}
	g.users[uid] = st
	return st
}

// evict drops history older than the profile window (t-τ, t].
func (st *userState) evict(t, tau temporal.Time) {
	lo := 0
	for lo < len(st.hist) && st.hist[lo].t <= t-tau {
		lo++
	}
	st.hist = st.hist[lo:]
}

// Next produces the next arrival in the open-loop schedule.
func (g *LoadGen) Next() Request { return g.next(true) }

// Skip advances the generator past the next n arrivals without
// materializing their feature rows or counting them in the running
// tallies. The RNG draw sequence is identical to n Next calls, so a
// skipped-then-resumed generator continues the exact same schedule —
// the seek primitive behind durable serve resume, where the committed
// input offset tells the restarted driver how far the dead process got.
func (g *LoadGen) Skip(n int) {
	for i := 0; i < n; i++ {
		g.next(false)
	}
}

func (g *LoadGen) next(emit bool) Request {
	t := g.cfg.Start + temporal.Time(g.seq)*g.cfg.TickEvery
	uid := int64(g.uzipf.Uint64())
	req := Request{Seq: g.seq, Time: t, UserId: uid}
	g.seq++

	st := g.user(uid)
	st.evict(t, g.cfg.Tau)

	if len(st.hist) == 0 || st.rng.Float64() < g.cfg.SearchFraction {
		// Search: update the profile.
		var kw int64
		if st.rng.Float64() < 0.6 {
			kw = st.interests[st.rng.Intn(len(st.interests))]
		} else {
			kw = int64(st.kwZipf.Uint64())
		}
		st.hist = append(st.hist, searchRec{t: t, kw: kw})
		req.Search = true
		req.Keyword = kw
		if emit {
			g.Searches++
		}
		return req
	}

	// Impression: reduce the profile into feature rows and draw the
	// planted ground-truth outcome, mirroring Generate's click model.
	ad := g.ads[st.rng.Intn(len(g.ads))]
	req.AdId = ad.ID

	counts := make(map[int64]int64)
	var order []int64
	p := g.base
	for _, rec := range st.hist {
		if counts[rec.kw] == 0 {
			order = append(order, rec.kw)
			for _, e := range g.eff[rec.kw] {
				if e.ad == ad.ID {
					p *= e.mult
				}
			}
		}
		counts[rec.kw]++
	}
	if p > g.cap_ {
		p = g.cap_
	}
	if st.rng.Float64() < p {
		req.Clicked = 1
	}
	if !emit {
		return req
	}
	for _, kw := range order {
		req.Rows = append(req.Rows, temporal.Row{
			temporal.Int(int64(t)), temporal.Int(uid), temporal.Int(ad.ID),
			temporal.Int(req.Clicked), temporal.Int(kw), temporal.Int(counts[kw]),
		})
	}
	g.Impressions++
	g.RowsEmitted += len(req.Rows)
	return req
}
