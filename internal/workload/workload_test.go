package workload

import (
	"testing"

	"timr/internal/temporal"
)

func smallConfig() Config {
	return Config{
		Users: 300, Keywords: 500, AdClasses: 5, Days: 2, Seed: 7,
		BotFraction: 0.02,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	cfg.Seed = 8
	b := Generate(cfg)
	if len(a.Rows) == len(b.Rows) {
		same := true
		for i := range a.Rows {
			if !a.Rows[i].Equal(b.Rows[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGenerateSortedAndInRange(t *testing.T) {
	d := Generate(smallConfig())
	if len(d.Rows) == 0 {
		t.Fatal("no rows")
	}
	var prev temporal.Time = -1
	for _, r := range d.Rows {
		tm := r[0].AsInt()
		if tm < prev {
			t.Fatal("rows not time-sorted")
		}
		prev = tm
		if tm < 0 || tm >= d.Horizon {
			t.Fatalf("timestamp %d outside horizon %d", tm, d.Horizon)
		}
		s := r[1].AsInt()
		if s != StreamImpression && s != StreamClick && s != StreamKeyword {
			t.Fatalf("bad stream id %d", s)
		}
		kwAd := r[3].AsInt()
		if s == StreamKeyword {
			if kwAd < 0 || kwAd >= int64(d.Cfg.Keywords) {
				t.Fatalf("keyword id %d out of range", kwAd)
			}
		} else if kwAd < AdIDBase {
			t.Fatalf("ad id %d below AdIDBase", kwAd)
		}
	}
}

func TestStreamComposition(t *testing.T) {
	d := Generate(smallConfig())
	imp := d.CountStream(StreamImpression)
	clk := d.CountStream(StreamClick)
	kw := d.CountStream(StreamKeyword)
	if imp == 0 || clk == 0 || kw == 0 {
		t.Fatalf("streams: imp=%d clk=%d kw=%d", imp, clk, kw)
	}
	if clk >= imp {
		t.Errorf("clicks (%d) must be rarer than impressions (%d)", clk, imp)
	}
	if kw <= imp {
		t.Errorf("searches (%d) should outnumber impressions (%d)", kw, imp)
	}
}

func TestClicksFollowImpressions(t *testing.T) {
	// Every click must have a same-user impression of the same ad at most
	// ~5 minutes earlier (required by GenTrainData's d=5min window).
	d := Generate(smallConfig())
	type key struct{ user, ad int64 }
	lastImp := map[key]temporal.Time{}
	for _, r := range d.Rows {
		k := key{r[2].AsInt(), r[3].AsInt()}
		switch r[1].AsInt() {
		case StreamImpression:
			lastImp[k] = r[0].AsInt()
		case StreamClick:
			ts, ok := lastImp[k]
			if !ok {
				t.Fatal("click without prior impression")
			}
			if gap := r[0].AsInt() - ts; gap < 0 || gap > 5*temporal.Minute {
				t.Fatalf("click %d away from impression", gap)
			}
		}
	}
}

func TestBotsAreHyperactive(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 500
	cfg.BotFraction = 0.02
	d := Generate(cfg)
	if len(d.Bots) == 0 {
		t.Fatal("no bots generated")
	}
	perUser := map[int64]int{}
	for _, r := range d.Rows {
		if r[1].AsInt() == StreamClick || r[1].AsInt() == StreamKeyword {
			perUser[r[2].AsInt()]++
		}
	}
	var botAvg, humanAvg float64
	var nb, nh int
	for u, n := range perUser {
		if d.Bots[u] {
			botAvg += float64(n)
			nb++
		} else {
			humanAvg += float64(n)
			nh++
		}
	}
	if nb == 0 || nh == 0 {
		t.Fatal("missing bot or human activity")
	}
	botAvg /= float64(nb)
	humanAvg /= float64(nh)
	if botAvg < 10*humanAvg {
		t.Errorf("bot activity %.1f not >> human %.1f", botAvg, humanAvg)
	}
}

func TestPlantedCorrelationVisible(t *testing.T) {
	// For the deodorant class, CTR among impressions preceded (within τ)
	// by a positive-keyword search must exceed the base CTR, and
	// negative-keyword CTR must be below it. This is the ground truth the
	// feature-selection experiments rely on.
	cfg := smallConfig()
	cfg.Users = 800
	cfg.Days = 3
	d := Generate(cfg)
	ad, ok := d.AdByName("deodorant")
	if !ok {
		t.Fatal("no deodorant class")
	}
	pos := map[int64]bool{}
	for _, k := range ad.Pos {
		pos[k] = true
	}
	neg := map[int64]bool{}
	for _, k := range ad.Neg {
		neg[k] = true
	}

	// Track recent searches per user.
	type search struct {
		t  temporal.Time
		kw int64
	}
	recent := map[int64][]search{}
	var posImp, posClk, negImp, negClk, allImp, allClk int
	pending := map[int64]int{} // user -> classification of last impression
	for _, r := range d.Rows {
		tm, s, u, ka := r[0].AsInt(), r[1].AsInt(), r[2].AsInt(), r[3].AsInt()
		if d.Bots[u] {
			continue
		}
		switch s {
		case StreamKeyword:
			recent[u] = append(recent[u], search{tm, ka})
		case StreamImpression:
			if ka != ad.ID {
				delete(pending, u)
				continue
			}
			hasPos, hasNeg := false, false
			rs := recent[u]
			for i := len(rs) - 1; i >= 0 && rs[i].t > tm-d.Cfg.Tau; i-- {
				if pos[rs[i].kw] {
					hasPos = true
				}
				if neg[rs[i].kw] {
					hasNeg = true
				}
			}
			allImp++
			cls := 0
			if hasPos && !hasNeg {
				posImp++
				cls = 1
			} else if hasNeg && !hasPos {
				negImp++
				cls = 2
			}
			pending[u] = cls
		case StreamClick:
			if ka != ad.ID {
				continue
			}
			allClk++
			switch pending[u] {
			case 1:
				posClk++
			case 2:
				negClk++
			}
		}
	}
	if posImp < 30 || negImp < 30 {
		t.Fatalf("too few classified impressions: pos=%d neg=%d", posImp, negImp)
	}
	base := float64(allClk) / float64(allImp)
	posCTR := float64(posClk) / float64(posImp)
	negCTR := float64(negClk) / float64(negImp)
	if posCTR <= 1.5*base {
		t.Errorf("positive-keyword CTR %.4f not lifted over base %.4f", posCTR, base)
	}
	if negCTR >= base {
		t.Errorf("negative-keyword CTR %.4f not dampened below base %.4f", negCTR, base)
	}
}

func TestSplitHalves(t *testing.T) {
	d := Generate(smallConfig())
	train, test := d.SplitHalves()
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	if len(train)+len(test) != len(d.Rows) {
		t.Fatal("split loses rows")
	}
	mid := d.Horizon / 2
	if train[len(train)-1][0].AsInt() >= mid || test[0][0].AsInt() < mid {
		t.Fatal("split not at time midpoint")
	}
}

func TestNamedKeywordsWired(t *testing.T) {
	d := Generate(smallConfig())
	ad, _ := d.AdByName("deodorant")
	found := false
	for _, k := range ad.Pos {
		if d.KeywordNames[k] == "icarly" {
			found = true
		}
	}
	if !found {
		t.Error("icarly must be a positive deodorant keyword (paper Example 2)")
	}
	// Popular irrelevant words must not be planted anywhere.
	for _, a := range d.Ads {
		for _, k := range append(append([]int64{}, a.Pos...), a.Neg...) {
			n := d.KeywordNames[k]
			for _, bad := range popularIrrelevant {
				if n == bad {
					t.Errorf("popular keyword %q planted in class %s", n, a.Name)
				}
			}
		}
	}
}

func TestDiurnalCycle(t *testing.T) {
	d := Generate(smallConfig())
	day := make([]int, 24)
	for _, r := range d.Rows {
		h := (r[0].AsInt() % temporal.Day) / temporal.Hour
		day[h]++
	}
	// Mid-day activity should clearly exceed the nightly trough.
	peak := day[12] + day[13] + day[14]
	trough := day[0] + day[1] + day[2]
	if peak <= trough {
		t.Errorf("no diurnal cycle: peak=%d trough=%d", peak, trough)
	}
}

func TestUnifiedSchemaShape(t *testing.T) {
	s := UnifiedSchema()
	want := []string{"Time", "StreamId", "UserId", "KwAdId"}
	for i, n := range want {
		if s.Field(i).Name != n {
			t.Errorf("field %d = %s", i, s.Field(i).Name)
		}
	}
}
