module timr

go 1.22
