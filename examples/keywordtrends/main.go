// Command keywordtrends reproduces the paper's Example 2: "a new
// television series (icarly) targeted towards the teen demographic is
// aired... searches for the show were strongly correlated with clicks on
// a deodorant ad." The workload generator plants exactly those
// correlations; the feature-selection temporal query (Figure 13)
// rediscovers them from raw logs, including the negative correlations
// (jobless, credit, ...) — and shows why popularity-based selection
// would instead retain irrelevant head keywords like google and msn.
package main

import (
	"fmt"
	"log"
	"sort"

	"timr"
	"timr/internal/bt"
)

func main() {
	cfg := timr.DefaultWorkloadConfig()
	cfg.Users, cfg.Days, cfg.AdClasses = 1500, 2, 5
	cfg.BaseCTR, cfg.NegDamp, cfg.PosLift = 0.15, 0.5, 3
	data := timr.GenerateWorkload(cfg)

	p := timr.DefaultBTParams()
	p.TrainPeriod = timr.Day
	p.ZThreshold = 0

	// Single-node run of the pipeline's first four phases — the exact
	// same plans TiMR distributes.
	out, err := timr.RunBTSingleNode(p, data.Events())
	if err != nil {
		log.Fatal(err)
	}

	ad, ok := data.AdByName("deodorant")
	if !ok {
		log.Fatal("no deodorant ad class")
	}
	planted := map[string]string{}
	for _, kw := range ad.Pos {
		planted[data.KeywordNames[kw]] = "planted +"
	}
	for _, kw := range ad.Neg {
		planted[data.KeywordNames[kw]] = "planted -"
	}

	type kz struct {
		name string
		z    float64
		pop  int64
	}
	// Popularity per keyword (what KE-pop would rank by).
	pop := map[int64]int64{}
	for _, e := range out[bt.DSTrain] {
		if e.Payload[2].AsInt() == ad.ID {
			pop[e.Payload[4].AsInt()]++
		}
	}
	var ks []kz
	for _, e := range out[bt.DSScores] {
		// Scores are emitted per training window; keep the first window's
		// (valid during the second period: LE/period == 1).
		if e.Payload[0].AsInt() != ad.ID || e.LE/int64(p.TrainPeriod) != 1 {
			continue
		}
		kw := e.Payload[1].AsInt()
		ks = append(ks, kz{data.KeywordNames[kw], e.Payload[2].AsFloat(), pop[kw]})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].z > ks[j].z })

	fmt.Printf("keyword trends for the %q ad class (paper Example 2 / Figure 17)\n\n", ad.Name)
	fmt.Printf("%-14s %8s %8s  %s\n", "keyword", "z-score", "support", "ground truth")
	n := len(ks)
	for i := 0; i < n && i < 8; i++ {
		k := ks[i]
		fmt.Printf("%-14s %+8.1f %8d  %s\n", k.name, k.z, k.pop, planted[k.name])
	}
	fmt.Println("  ...")
	for i := n - 8; i >= 0 && i < n; i++ {
		k := ks[i]
		fmt.Printf("%-14s %+8.1f %8d  %s\n", k.name, k.z, k.pop, planted[k.name])
	}

	// What popularity-based selection would have kept instead.
	type kp struct {
		name string
		pop  int64
		z    float64
	}
	zOf := map[string]float64{}
	for _, k := range ks {
		zOf[k.name] = k.z
	}
	var byPop []kp
	for kw, c := range pop {
		byPop = append(byPop, kp{data.KeywordNames[kw], c, zOf[data.KeywordNames[kw]]})
	}
	sort.Slice(byPop, func(i, j int) bool {
		if byPop[i].pop != byPop[j].pop {
			return byPop[i].pop > byPop[j].pop
		}
		return byPop[i].name < byPop[j].name
	})
	fmt.Println("\nmost popular keywords in the ad's training data (KE-pop's picks):")
	for i := 0; i < len(byPop) && i < 6; i++ {
		k := byPop[i]
		note := planted[k.name]
		if note == "" {
			note = "irrelevant"
		}
		fmt.Printf("%-14s support=%-6d z=%+5.1f  (%s)\n", k.name, k.pop, k.z, note)
	}
	fmt.Println("\n\"frequency-based feature selection cannot select the best keywords for BT\" — §V-C")
}
