// Command btpipeline runs the paper's end-to-end behavioral-targeting
// solution (§IV) over a generated week of ad logs on a simulated cluster:
// bot elimination → click/non-click labeling → training-data (UBP)
// generation → z-test feature selection → data reduction → per-ad
// logistic-regression models — all as declarative temporal queries
// executed by TiMR, then evaluates the models' CTR lift on the test half.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"timr"
	"timr/internal/bt"
	"timr/internal/ml"
)

func main() {
	users := flag.Int("users", 1200, "number of users to simulate")
	days := flag.Int("days", 2, "days of logs")
	machines := flag.Int("machines", 16, "simulated cluster size")
	flag.Parse()

	cfg := timr.DefaultWorkloadConfig()
	cfg.Users, cfg.Days = *users, *days
	cfg.AdClasses = 5
	cfg.BaseCTR, cfg.NegDamp, cfg.PosLift = 0.15, 0.5, 3 // laptop-scale rates
	data := timr.GenerateWorkload(cfg)
	fmt.Printf("generated %d events for %d users over %d day(s); %d bots\n",
		len(data.Rows), cfg.Users, cfg.Days, len(data.Bots))

	p := timr.DefaultBTParams()
	p.TrainPeriod = timr.Time(*days) * timr.Day / 2
	p.ZThreshold = 0

	cluster := timr.NewCluster(timr.ClusterConfig{Machines: *machines})
	cluster.FS.Write("events", timr.SinglePartition(timr.UnifiedSchema(), data.Rows))
	t := timr.New(cluster, timr.DefaultTiMRConfig())
	pipe := timr.NewBTPipeline(p, t)
	if err := pipe.Run("events"); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npipeline phases (each one TiMR job of declarative temporal queries):")
	for _, ph := range pipe.Phases {
		fmt.Printf("  %-14s -> %-12s %8d rows   %v\n", ph.Name, ph.Output, ph.Rows, ph.Duration.Round(1e6))
	}

	// Top discovered keywords for the first ad class (Figures 17-19).
	scores, err := pipe.Events(bt.DSScores)
	if err != nil {
		log.Fatal(err)
	}
	ad := data.Ads[0]
	type kz struct {
		kw string
		z  float64
	}
	var ks []kz
	for _, e := range scores {
		if e.Payload[0].AsInt() == ad.ID && e.LE < int64(p.TrainPeriod)*2 {
			ks = append(ks, kz{data.KeywordNames[e.Payload[1].AsInt()], e.Payload[2].AsFloat()})
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].z > ks[j].z })
	fmt.Printf("\nkeyword correlations discovered for the %q ad class (z-scores):\n", ad.Name)
	show := func(k kz) { fmt.Printf("  %-12s %+6.1f\n", k.kw, k.z) }
	for i := 0; i < len(ks) && i < 5; i++ {
		show(ks[i])
	}
	fmt.Println("  ...")
	for i := len(ks) - 5; i >= 0 && i < len(ks); i++ {
		show(ks[i])
	}

	// Score the test half with the trained model (scoring as in §IV-B.4).
	models, err := pipe.Events(bt.DSModels)
	if err != nil {
		log.Fatal(err)
	}
	var model *ml.Model
	for _, e := range models {
		if e.Payload[0].AsInt() == ad.ID {
			if model, err = bt.ParseModel(e.Payload[1].AsString()); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	if model == nil {
		log.Fatalf("no model produced for ad %s", ad.Name)
	}
	trainEvs, _ := pipe.Events(bt.DSTrain)
	labeledEvs, _ := pipe.Events(bt.DSLabeled)
	var testRows, testLabeled []timr.Row
	for _, e := range trainEvs {
		if e.Payload[2].AsInt() == ad.ID && e.LE >= int64(p.TrainPeriod) {
			testRows = append(testRows, e.Payload)
		}
	}
	for _, e := range labeledEvs {
		if e.Payload[2].AsInt() == ad.ID && e.LE >= int64(p.TrainPeriod) {
			testLabeled = append(testLabeled, e.Payload)
		}
	}
	examples := bt.RowsToExamples(testRows)
	examples = bt.AddEmptyExamples(examples, testLabeled, testRows, ad.ID)

	preds := make([]float64, len(examples))
	labels := make([]bool, len(examples))
	for i, ex := range examples {
		preds[i] = model.Predict(ex.Features)
		labels[i] = ex.Clicked
	}
	curve := timr.LiftCoverageCurve(preds, labels, 10)
	fmt.Printf("\nCTR lift vs coverage on the test half (%d impressions, ad %q):\n", len(examples), ad.Name)
	for _, pt := range curve {
		fmt.Printf("  coverage %5.1f%%   CTR %5.2f%%   lift %+5.0f%%\n",
			pt.Coverage*100, pt.CTR*100, pt.Lift*100)
	}
}
