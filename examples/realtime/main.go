// Command realtime demonstrates the paper's central "write once, run
// offline and online" property (§III-C.1): the SAME bot-elimination plan
// that TiMR scales over map-reduce (examples/btpipeline) is deployed here
// as a continuous query over a live event feed, detecting bots and
// emitting clean events as they happen.
//
// The engine is driven incrementally — one event at a time, with
// punctuations advancing application time — exactly as a DSMS deployment
// would be. Because results are defined purely over application time, the
// output matches the offline run bit for bit.
package main

import (
	"fmt"
	"log"

	"timr"
	"timr/internal/bt"
)

func main() {
	cfg := timr.DefaultWorkloadConfig()
	cfg.Users, cfg.Days, cfg.AdClasses = 300, 1, 3
	cfg.BotFraction = 0.01
	data := timr.GenerateWorkload(cfg)

	p := timr.DefaultBTParams()
	p.T1, p.T2 = 50, 120 // small thresholds for the small feed

	plan := timr.BotElimPlan(p, false)

	// ---- Live deployment: stream events into the engine as they "arrive".
	var (
		kept    int
		dropped int
		outPer  = map[int64]int{}
		inPer   = map[int64]int{}
	)
	out := &timr.FuncSink{Event: func(e timr.Event) {
		kept++
		outPer[e.Payload[2].AsInt()]++
	}}
	// Punctuate every 15 min of app time.
	eng, err := timr.NewEngine(plan, timr.WithSink(out), timr.WithCTIPeriod(15*timr.Minute))
	if err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, row := range data.Rows {
		total++
		inPer[row[2].AsInt()]++
		eng.Feed(bt.SourceEvents, timr.PointEvent(row[0].AsInt(), row))
	}
	eng.Flush()
	dropped = total - kept

	fmt.Printf("live feed: %d events in, %d passed, %d dropped as bot activity (%.1f%%)\n",
		total, kept, dropped, 100*float64(dropped)/float64(total))

	// Ground truth: bots should have most of their activity suppressed,
	// humans none.
	botsCaught, humansSuppressed := 0, 0
	var botDropped, botTotal int
	for u, n := range inPer {
		suppressed := n - outPer[u]
		if data.Bots[u] {
			botTotal += n
			botDropped += suppressed
			if suppressed > 0 {
				botsCaught++
			}
		} else if suppressed > 0 {
			humansSuppressed++
		}
	}
	fmt.Printf("ground truth: %d/%d bots had activity suppressed (%.0f%% of their events dropped); %d humans affected\n",
		botsCaught, len(data.Bots), 100*float64(botDropped)/float64(botTotal), humansSuppressed)

	// ---- The identical plan over the identical data, batch/offline.
	batch, err := timr.RunPlan(plan, map[string][]timr.Event{
		bt.SourceEvents: data.Events(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline batch run of the same plan: %d events passed\n", len(batch))
	if len(batch) == kept {
		fmt.Println("real-time and offline results agree — the temporal algebra at work (§III-C.1)")
	} else {
		fmt.Printf("MISMATCH: live=%d batch=%d\n", kept, len(batch))
	}

	// ---- Scaled live deployment (§VII): the ANNOTATED plan as a
	// pipelined dataflow over 8 partitions, fed the same way.
	annotated := timr.BotElimPlan(p, true)
	streamed := 0
	job, err := timr.NewStreamingJob(annotated,
		map[string]*timr.Schema{bt.SourceEvents: timr.UnifiedSchema()},
		timr.WithMachines(8),
		timr.WithStreamConfig(timr.DefaultTiMRConfig()),
		timr.WithOnEvent(func(timr.Event) { streamed++ }))
	if err != nil {
		log.Fatal(err)
	}
	feed, err := job.Source(bt.SourceEvents)
	if err != nil {
		log.Fatal(err)
	}
	lastCTI := timr.Time(0)
	for _, row := range data.Rows {
		ts := row[0].AsInt()
		if ts-lastCTI >= 15*timr.Minute {
			if err := job.Advance(ts); err != nil {
				log.Fatal(err)
			}
			lastCTI = ts
		}
		if err := feed.Feed(timr.PointEvent(ts, row)); err != nil {
			log.Fatal(err)
		}
	}
	job.Flush()
	streamRes, err := job.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipelined 8-partition dataflow of the same plan: %d events passed\n", len(streamRes))
	if len(streamRes) == kept {
		fmt.Println("distributed streaming execution matches too — write once, run anywhere (§VII)")
	} else {
		fmt.Printf("MISMATCH: streaming=%d single=%d\n", len(streamRes), kept)
	}
	_ = streamed
}
