// Command networklogs shows that the framework generalizes beyond
// advertising: "The temporal-analytics-temporal-data characteristic is
// not unique to BT, but is true for many other large-scale applications
// such as network log querying" (paper §I). It analyses a synthetic
// firewall log with StreamSQL queries run through the full TiMR stack:
//
//  1. a windowed per-host connection-rate query (port-scan detector);
//  2. an AntiSemiJoin suppressing hosts on an allowlist interval stream;
//  3. a global error-rate tracker via temporal partitioning (the query
//     has no payload key at all).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"timr"
)

func main() {
	// ---- Synthetic firewall log: Time, SrcIP, DstPort, Status ----
	schema := timr.NewSchema(
		timr.Field{Name: "Time", Kind: timr.KindInt},
		timr.Field{Name: "SrcIP", Kind: timr.KindInt},
		timr.Field{Name: "DstPort", Kind: timr.KindInt},
		timr.Field{Name: "Status", Kind: timr.KindInt}, // 0 ok, 1 refused
	)
	rng := rand.New(rand.NewSource(7))
	var rows []timr.Row
	tm := timr.Time(0)
	for i := 0; i < 60_000; i++ {
		tm += timr.Time(rng.Intn(100))
		src := int64(rng.Intn(500))
		port := int64(rng.Intn(1024))
		status := int64(0)
		if rng.Float64() < 0.05 {
			status = 1
		}
		// Host 13 is a scanner: bursts of refused connections to many ports.
		if i%20 == 0 {
			src, port, status = 13, int64(rng.Intn(65535)), 1
		}
		rows = append(rows, timr.Row{timr.Int(tm), timr.Int(src), timr.Int(port), timr.Int(status)})
	}
	cat := timr.SQLCatalog{"fw": schema}
	cluster := timr.NewCluster(timr.ClusterConfig{Machines: 16})
	cluster.FS.Write("fw", timr.SinglePartition(schema, rows))
	t := timr.New(cluster, timr.DefaultTiMRConfig())

	runSQL := func(name, sql string) []timr.Event {
		plan, err := timr.CompileSQL(sql, cat)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if _, err := t.Run(plan, map[string]string{"fw": "fw"}, "out."+name); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		events, err := t.ResultEvents("out." + name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %6d result events\n", name, len(events))
		return events
	}

	// 1. Port-scan detector: hosts with >50 refused connections per minute.
	scans := runSQL("scan-detector", `
		SELECT SrcIP, COUNT(*) AS Refused
		FROM fw WHERE Status = 1
		GROUP BY SrcIP WINDOW 1m
		HAVING Refused > 50
		PARTITION BY SrcIP`)
	flagged := map[int64]bool{}
	for _, e := range scans {
		flagged[e.Payload[0].AsInt()] = true
	}
	fmt.Printf("  flagged hosts: %d (scanner 13 flagged: %v)\n", len(flagged), flagged[13])

	// 2. Suppress traffic from flagged hosts — the bot-elimination shape.
	clean := runSQL("suppress-scanners", `
		SELECT * FROM fw AS f
		ANTIJOIN (
			SELECT SrcIP, COUNT(*) AS Refused FROM fw WHERE Status = 1
			GROUP BY SrcIP WINDOW 1m HAVING Refused > 50
		) AS bad ON f.SrcIP = bad.SrcIP
		PARTITION BY SrcIP`)
	fmt.Printf("  %d/%d events pass the filter\n", len(clean), len(rows))

	// 3. Global refused-connection rate — no payload key, so the
	// optimizer must fall back to temporal partitioning.
	plan, err := timr.CompileSQL(`SELECT COUNT(*) AS Refused FROM fw WHERE Status = 1 WINDOW 5m`, cat)
	if err != nil {
		log.Fatal(err)
	}
	stats := timr.DefaultStats()
	stats.SourceRows["fw"] = int64(len(rows))
	stats.TimeSpans = 64
	annotated, _, err := timr.NewOptimizer(stats).Optimize(plan)
	if err != nil {
		log.Fatal(err)
	}
	stat, err := t.Run(annotated, map[string]string{"fw": "fw"}, "out.rate")
	if err != nil {
		log.Fatal(err)
	}
	rate, err := t.ResultEvents("out.rate")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %6d result events across %d time spans\n",
		"global-error-rate", len(rate), stat.Stages[0].Partitions)
	var peak int64
	for _, e := range rate {
		if v := e.Payload[0].AsInt(); v > peak {
			peak = v
		}
	}
	fmt.Printf("  peak refused connections in any 5-minute window: %d\n", peak)
}
