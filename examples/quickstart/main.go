// Command quickstart runs the paper's Example 1 (RunningClickCount): the
// per-ad click count over a 6-hour sliding window, expressed as a 4-line
// temporal query, scaled over a simulated map-reduce cluster by TiMR.
//
// Compare with the two strawmen of paper §II-C: the SCOPE self-join
// (intractable) and the hand-written linked-list reducer (~50 lines of
// careful code in internal/baseline).
package main

import (
	"fmt"
	"log"

	"timr"
)

func main() {
	// A small synthetic ad log (the generator stands in for the paper's
	// production logs; see DESIGN.md).
	cfg := timr.DefaultWorkloadConfig()
	cfg.Users, cfg.Days, cfg.AdClasses = 400, 2, 4
	data := timr.GenerateWorkload(cfg)

	// Keep only clicks, in the click-log schema of paper Figure 1(b).
	clickSchema := timr.NewSchema(
		timr.Field{Name: "Time", Kind: timr.KindInt},
		timr.Field{Name: "UserId", Kind: timr.KindInt},
		timr.Field{Name: "AdId", Kind: timr.KindInt},
	)
	var clicks []timr.Row
	for _, r := range data.Rows {
		if r[1].AsInt() == timr.StreamClick {
			clicks = append(clicks, timr.Row{r[0], r[2], r[3]})
		}
	}
	fmt.Printf("generated %d rows, %d clicks\n", len(data.Rows), len(clicks))

	// RunningClickCount: the whole query.
	plan := timr.Scan("clicks", clickSchema).
		Exchange(timr.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *timr.Plan) *timr.Plan {
			return g.WithWindow(6 * timr.Hour).Count("ClickCount")
		})

	// Run it on a 16-machine simulated cluster.
	cluster := timr.NewCluster(timr.ClusterConfig{Machines: 16})
	cluster.FS.Write("ds.clicks", timr.SinglePartition(clickSchema, clicks))
	t := timr.New(cluster, timr.DefaultTiMRConfig())
	stat, err := t.Run(plan, map[string]string{"clicks": "ds.clicks"}, "out")
	if err != nil {
		log.Fatal(err)
	}
	events, err := t.ResultEvents("out")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TiMR ran %d stage(s); %d result events\n", len(stat.Stages), len(events))
	fmt.Println("\nfirst count changes (ad, interval, clicks in last 6h):")
	for i, e := range events {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(events)-10)
			break
		}
		fmt.Printf("  ad %d  [%6dm, %6dm)  count=%d\n",
			e.Payload[0].AsInt()-1<<40, e.LE/timr.Minute, e.RE/timr.Minute, e.Payload[1].AsInt())
	}

	// The peak 6-hour click count per ad — the kind of periodic trend the
	// analyst of Example 1 is after.
	peak := map[int64]int64{}
	for _, e := range events {
		ad := e.Payload[0].AsInt()
		if c := e.Payload[1].AsInt(); c > peak[ad] {
			peak[ad] = c
		}
	}
	fmt.Println("\npeak 6-hour click volume per ad class:")
	for _, ad := range data.Ads {
		fmt.Printf("  %-12s %d\n", ad.Name, peak[ad.ID])
	}
}
