GO ?= go

.PHONY: build test race vet fmt check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The full pre-merge gate.
check: vet fmt race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
