GO ?= go

.PHONY: build test race vet fmt deprecations chaos spillgate fuzzgate fusegate servegate durgate incgate check bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Fails if non-test code picks up the deprecated engine constructors
# (use NewEngine with options); the definitions themselves and the
# facade re-exports are allowed. Likewise for the deprecated streaming
# surface — the positional NewStreamingJobLegacy constructor and the
# job-level Feed*/TryFeed methods (use the options constructor and
# job.Source(...) Feeders): here even tests must migrate, except the
# one sanctioned compat test that pins the delegation behavior.
deprecations:
	@out=$$(grep -rn --include='*.go' \
		--exclude='*_test.go' \
		-E 'NewEngine(To|Observed|ObservedTo)\(' . \
		| grep -v '^\./internal/temporal/engine\.go:' \
		| grep -v '^\./timr\.go:' || true); \
	if [ -n "$$out" ]; then \
		echo "deprecated engine constructors in non-test code:"; \
		echo "$$out"; exit 1; fi
	@out=$$(grep -rn --include='*.go' \
		-E 'NewStreamingJobLegacy\(|(job|j|legacy)\.(Feed|FeedBatch|FeedColBatch|TryFeed)\(' . \
		| grep -v '^\./internal/core/streaming\.go:' \
		| grep -v '^\./internal/core/legacy_compat_test\.go:' \
		| grep -v '^\./timr\.go:' || true); \
	if [ -n "$$out" ]; then \
		echo "deprecated streaming surface (use NewStreamingJob options + job.Source feeders):"; \
		echo "$$out"; exit 1; fi

# Chaos equivalence under the race detector: streaming jobs with
# injected partition crashes (multiple seeds) must match the crash-free
# run bit-for-bit, and checkpoint roundtrips must be byte-identical.
chaos:
	$(GO) test -race -count=1 -run 'TestStreamingChaos|TestCheckpoint' ./internal/core/ ./internal/temporal/

# Out-of-core equivalence under the race detector: the BT pipeline with
# the memory budget squeezed to a few KB (and with spilling forced) must
# match the all-resident run bit-for-bit, as must a chained two-fragment
# TiMR plan across budgets.
spillgate:
	$(GO) test -race -count=1 -run 'TestPipelineLowBudget|TestSpillBudgetEquivalence|TestMemoryBudgetOutputEquivalence' ./internal/bt/ ./internal/core/ ./internal/mapreduce/

# Short fuzz sweep over every decoder that parses untrusted bytes: the
# row codec, the columnar block format, and checkpoint images. Corrupt
# input must error — never panic, never over-allocate. 10s per target
# keeps the gate fast; longer runs reuse the same corpus.
fuzzgate:
	$(GO) test -run '^$$' -fuzz 'FuzzRowCodecRoundtrip' -fuzztime 10s ./internal/temporal/
	$(GO) test -run '^$$' -fuzz 'FuzzColBlockRoundtrip' -fuzztime 10s ./internal/temporal/
	$(GO) test -run '^$$' -fuzz 'FuzzCheckpointRoundtrip' -fuzztime 10s ./internal/temporal/
	$(GO) test -run '^$$' -fuzz 'FuzzFrameDecode' -fuzztime 10s ./internal/temporal/
	$(GO) test -run '^$$' -fuzz 'FuzzSummaryRoundtrip' -fuzztime 10s ./internal/bt/

# Fusion equivalence under the race detector: every fused/interpreted
# differential — engine-level (row, columnar, fallback shapes, snapshot
# interchange), TiMR columnar reducer feeds, streaming columnar chaos,
# and the end-to-end BT pipeline — must be bit-identical.
fusegate:
	$(GO) test -race -count=1 -run 'TestFused' ./internal/temporal/ ./internal/core/ ./internal/bt/

# Elastic-serving equivalence under the race detector: live partition
# migration (forced splits/merges, mid-interval, composed with crash
# chaos, and policy-driven) must be bit-identical to the static run,
# and the serving tier's delivered scores must not change under
# placement, pacing, or admission bounds.
servegate:
	$(GO) test -race -count=1 -run 'TestMigration|TestAutoRebalance|TestServe' ./internal/core/ ./internal/serve/

# Durability under the race detector: the durable checkpoint store's
# commit protocol and fault injection (torn writes, ENOSPC, bit flips —
# 30% fault rate across multiple seeds), plus the kill-and-restart
# drills — core and serving tier — which must recover bit-identically,
# including through generation fallback after corruption.
durgate:
	$(GO) test -race -count=1 -run 'TestDurable|TestFaultFS' ./internal/dur/ ./internal/core/ ./internal/serve/

# Incremental-refresh equivalence under the race detector: the 7-day
# sliding-window drill (delta ingest byte-identical to full recompute
# every day), the engine-pipeline pinning of the mergeable summaries,
# the kill-and-restart resume through a >=30%-fault-rate store with
# quarantine fallback, and the warm-start parity gate.
incgate:
	$(GO) test -race -count=1 -run 'TestRefresh' ./internal/bt/

# The full pre-merge gate. Perf changes should additionally refresh the
# tracked benchmark snapshot via `make bench-json` (not part of check:
# benchmark timings are host-dependent and would make the gate flaky).
check: vet fmt deprecations race chaos spillgate fuzzgate fusegate servegate durgate incgate

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Headline benchmarks (shuffle, Fig. 15/16, engine feed path, serving
# tier, refresh delta-vs-full) as machine-readable JSON — the perf
# trajectory file compared across PRs.
bench-json:
	$(GO) run ./cmd/timr bench-json -out BENCH_pr10.json
