// Command adgen generates a synthetic advertising log in the paper's
// unified schema (Figure 9: Time, StreamId, UserId, KwAdId) and writes it
// as tab-separated values, plus an optional ground-truth sidecar listing
// the planted keyword correlations and bot users.
//
// Usage:
//
//	adgen [-users N] [-days N] [-ads N] [-keywords N] [-seed N]
//	      [-o events.tsv] [-truth truth.tsv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"timr"
)

func main() {
	users := flag.Int("users", 4000, "number of users")
	days := flag.Int("days", 7, "days of logs")
	ads := flag.Int("ads", 10, "ad classes")
	keywords := flag.Int("keywords", 4000, "vocabulary size")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	truth := flag.String("truth", "", "optional ground-truth sidecar file")
	flag.Parse()

	cfg := timr.DefaultWorkloadConfig()
	cfg.Users, cfg.Days, cfg.AdClasses, cfg.Keywords, cfg.Seed = *users, *days, *ads, *keywords, *seed
	data := timr.GenerateWorkload(cfg)

	w := bufio.NewWriter(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	fmt.Fprintln(w, "Time\tStreamId\tUserId\tKwAdId")
	for _, r := range data.Rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", r[0].AsInt(), r[1].AsInt(), r[2].AsInt(), r[3].AsInt())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d events (%d users, %d days, seed %d)\n",
		len(data.Rows), *users, *days, *seed)

	if *truth == "" {
		return
	}
	tf, err := os.Create(*truth)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	tw := bufio.NewWriter(tf)
	for _, ad := range data.Ads {
		for _, kw := range ad.Pos {
			fmt.Fprintf(tw, "pos\t%s\t%d\t%s\n", ad.Name, kw, data.KeywordNames[kw])
		}
		for _, kw := range ad.Neg {
			fmt.Fprintf(tw, "neg\t%s\t%d\t%s\n", ad.Name, kw, data.KeywordNames[kw])
		}
	}
	bots := make([]int64, 0, len(data.Bots))
	for u := range data.Bots {
		bots = append(bots, u)
	}
	sort.Slice(bots, func(i, j int) bool { return bots[i] < bots[j] })
	for _, u := range bots {
		fmt.Fprintf(tw, "bot\t%d\n", u)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote ground truth to %s\n", *truth)
}
