// Command experiments regenerates the paper's evaluation tables and
// figures (§V) on synthetic data.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-machines N] [name ...]
//
// With no names, every experiment runs in presentation order. Known names:
// strawman fig14 fig15 fig16 ex3 fig17 fig20 fig21 fig22 memtime.
// Results for the default (full) scale are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timr/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale (~15s instead of minutes)")
	seed := flag.Int64("seed", 1, "workload seed")
	machines := flag.Int("machines", 0, "simulated cluster size (default 150, 8 with -quick)")
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.Workload.Seed = *seed
	if *machines > 0 {
		opt.Machines = *machines
	}

	todo := experiments.All()
	if names := flag.Args(); len(names) > 0 {
		todo = todo[:0]
		for _, n := range names {
			e, err := experiments.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	ctx := experiments.NewContext(opt)
	fmt.Printf("# TiMR experiment suite — %d users, %d days, %d machines%s\n\n",
		opt.Workload.Users, opt.Workload.Days, opt.Machines,
		map[bool]string{true: " (quick)", false: ""}[*quick])
	for _, e := range todo {
		fmt.Printf("## %s — %s\n\n", e.Name, e.Caption)
		start := time.Now()
		tab, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(tab)
		fmt.Printf("(%s in %v)\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
