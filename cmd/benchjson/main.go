// Command benchjson runs the repo's headline benchmarks (shuffle,
// spill, Fig. 15, Fig. 16, the engine feed path) and writes the results
// as machine-readable JSON — the perf trajectory file tracked across
// PRs. Usage:
//
//	go run ./cmd/benchjson -out BENCH_pr7.json
//
// It shells out to `go test -bench` (stdlib only, no benchstat
// dependency) and parses the standard benchmark output format, keeping
// ns/op plus any custom metrics the benchmarks report (rows/s,
// events/sec, makespan_us, ...).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Op      string             `json:"op"`                // benchmark name, GOMAXPROCS suffix stripped
	Package string             `json:"package"`           // Go package the benchmark lives in
	Iters   int64              `json:"iters"`             // b.N of the final run
	NsPerOp float64            `json:"ns_per_op"`         // wall time per op
	Metrics map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric values (rows/s, ...)
}

// benchLine matches e.g.
//
//	BenchmarkShuffle_1M_Parallel-8   3   152391505 ns/op   6880823 rows/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches trailing "value unit" pairs after ns/op.
var metricPair = regexp.MustCompile(`([\d.eE+-]+) (\S+)`)

func parse(pkg string, out []byte, into *[]Result) {
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Op: strings.TrimPrefix(m[1], "Benchmark"), Package: pkg, Iters: iters, NsPerOp: ns}
		for _, mp := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mp[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[mp[2]] = v
		}
		*into = append(*into, r)
	}
}

func main() {
	out := flag.String("out", "BENCH_pr7.json", "output JSON file")
	pattern := flag.String("bench", "Shuffle_1M|Spill_1M|FlattenResident|MergeRuns|MergeStableSort|Fig15|Fig16", "benchmark regexp")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	feedtime := flag.String("feedbenchtime", "20x", "benchtime for the EngineFeed pair")
	flag.Parse()

	type run struct {
		pkg, pattern, benchtime string
	}
	runs := []run{
		{"./internal/mapreduce", *pattern, *benchtime},
		{"./internal/core", *pattern, *benchtime},
		{".", *pattern, *benchtime},
		// The engine feed-path pair finishes in microseconds per op; a
		// 3-iteration run is noise-dominated, so it gets more iterations.
		{".", "EngineFeed", *feedtime},
	}
	var results []Result
	for _, r := range runs {
		fmt.Fprintf(os.Stderr, "benchjson: %s -bench %q -benchtime %s\n", r.pkg, r.pattern, r.benchtime)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", r.pattern, "-benchtime", r.benchtime, r.pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s failed: %v\n%s", r.pkg, err, raw)
			os.Exit(1)
		}
		parse(r.pkg, raw, &results)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks matched")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
