// Command benchjson is the legacy front of the bench harness; new
// callers use `timr bench-json`. Both delegate to internal/benchjson.
package main

import (
	"fmt"
	"os"

	"timr/internal/benchjson"
)

func main() {
	fmt.Fprintln(os.Stderr, "benchjson: note: `go run ./cmd/benchjson` is deprecated; use `go run ./cmd/timr bench-json`")
	if err := benchjson.RunCLI(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
