package main

// timr refresh: the incremental BT maintenance loop. Ingests a synthetic
// log one day at a time, maintaining the pipeline's back stages from
// mergeable summaries (click counts merge, z-tests replay exactly,
// frozen-window models are trained once) and choosing full-vs-delta per
// ingest with the optimizer's cost model. With -durdir every ingested
// day commits one durable generation; rerunning the same command resumes
// from the newest intact one — the persisted state carries the workload
// config, so the resumed process regenerates the identical log and
// continues where the dead one stopped.

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"timr/internal/bt"
	"timr/internal/dur"
	"timr/internal/obs"
	"timr/internal/temporal"
	"timr/internal/workload"
)

type refreshOpts struct {
	users, keywords, ads int
	days                 int
	seed                 int64
	mode                 string
	retain               bool
	warm                 bool
	durdir               string
	metrics              bool
}

func refreshFlags(o *refreshOpts) *flag.FlagSet {
	if o == nil {
		o = &refreshOpts{}
	}
	fs := flag.NewFlagSet("timr refresh", flag.ExitOnError)
	fs.IntVar(&o.users, "users", 2000, "user population of the generated log")
	fs.IntVar(&o.keywords, "keywords", 2000, "keyword vocabulary size")
	fs.IntVar(&o.ads, "ads", 8, "ad classes")
	fs.IntVar(&o.days, "days", 7, "days of log to ingest, one per generation")
	fs.Int64Var(&o.seed, "seed", 1, "workload seed")
	fs.StringVar(&o.mode, "mode", "auto", "refresh path: auto (cost chooser), full, or delta")
	fs.BoolVar(&o.retain, "retain", false, "retain full raw history in memory so the full path stays available")
	fs.BoolVar(&o.warm, "warm", false, "warm-start partial-window retrains behind the lift-parity gate")
	fs.StringVar(&o.durdir, "durdir", "", "durable state directory: commit one generation per day, resume on restart")
	fs.BoolVar(&o.metrics, "metrics", false, "print the durable-store metrics table to stderr after the run")
	return fs
}

func refreshCmd(args []string) {
	var o refreshOpts
	refreshFlags(&o).Parse(args)

	mode := bt.ModeAuto
	switch o.mode {
	case "auto":
	case "full":
		mode, o.retain = bt.ModeFull, true
	case "delta":
		mode = bt.ModeDelta
	default:
		log.Fatalf("refresh: unknown -mode %q (want auto, full, or delta)", o.mode)
	}

	w := workload.Config{Users: o.users, Keywords: o.keywords, AdClasses: o.ads, Days: o.days, Seed: o.seed}
	p := bt.DefaultParams()
	p.TrainPeriod = temporal.Day

	scope := obs.New("refresh")
	opts := bt.RefreshOptions{Mode: mode, RetainHistory: o.retain, AllowWarmStart: o.warm}
	if o.durdir != "" {
		store, err := dur.OpenStore(o.durdir, dur.Options{Obs: scope.Child("dur")})
		if err != nil {
			log.Fatal(err)
		}
		opts.Store = store
	}

	r := bt.NewRefresher(p, w, opts)
	if opts.Store != nil {
		resumed, err := r.Restore()
		if err != nil {
			log.Fatal(err)
		}
		if resumed {
			// The persisted state knows the workload it was built from;
			// command-line workload flags are superseded on resume.
			w = r.State.Cfg
			if o.days > w.Days {
				w.Days = o.days
			}
			fmt.Fprintf(os.Stderr, "refresh: resumed from %s at day %d (watermark %d)\n",
				o.durdir, r.State.Days, r.State.Watermark)
		}
	}
	if r.State.Days >= o.days {
		fmt.Fprintf(os.Stderr, "refresh: state already covers %d days; raise -days to continue\n", r.State.Days)
		return
	}

	fmt.Fprintf(os.Stderr, "refresh: generating %d-day log (users=%d keywords=%d ads=%d seed=%d)...\n",
		w.Days, w.Users, w.Keywords, w.AdClasses, w.Seed)
	data := workload.Generate(w)

	for day := r.State.Days; day < o.days; day++ {
		rows := data.DayRows(day)
		start := time.Now()
		if err := r.IngestDay(rows, temporal.Time(day+1)*temporal.Day); err != nil {
			log.Fatal(err)
		}
		path := "full"
		if r.LastDelta {
			path = "delta"
		}
		fmt.Printf("refresh: day=%d rows=%d path=%s duration=%s models=%d warm=%d/%d\n",
			day, len(rows), path, time.Since(start).Round(time.Millisecond),
			len(r.State.Models), r.WarmStarts, r.WarmStarts+r.WarmRejects)
		if r.DurErr != nil {
			fmt.Fprintf(os.Stderr, "refresh: warning: day %d commit failed (%v); previous generation remains the recovery line\n", day, r.DurErr)
		}
	}

	frozen := 0
	for _, m := range r.State.Models {
		if m.Frozen {
			frozen++
		}
	}
	sum, err := r.State.SummaryBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh: days=%d watermark=%d train_rows=%d models=%d frozen=%d state_bytes=%d\n",
		r.State.Days, r.State.Watermark, len(r.State.Train), len(r.State.Models), frozen, len(sum))
	if o.metrics {
		fmt.Fprintf(os.Stderr, "\nmetrics:\n%s", scope.Table())
	}
}
