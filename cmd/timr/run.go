package main

// timr run: one-shot temporal queries on the simulated cluster. With
// -sql, the StreamSQL query runs against the `events` stream (unified
// schema); if it carries no PARTITION BY annotation, the cost-based
// optimizer chooses the partitioning — the full Figure-5 pipeline:
// parse → annotate → fragment → map-reduce.
//
// Input is the TSV produced by adgen (Time, StreamId, UserId, KwAdId);
// with no -in, a default workload is generated in-process. Results are
// written as TSV to stdout with __LE/__RE lifetime columns.

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"timr"
	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/tsql"
)

type runOpts struct {
	query, sql, in string
	machines       int
	window         time.Duration
	zThresh        float64
	budget         int64
	metrics        bool
	sweepSpill     bool
}

func runFlags(o *runOpts) *flag.FlagSet {
	if o == nil {
		o = &runOpts{}
	}
	fs := flag.NewFlagSet("timr run", flag.ExitOnError)
	fs.StringVar(&o.query, "q", "clickcount", "query: clickcount | botelim | bt")
	fs.StringVar(&o.sql, "sql", "", "StreamSQL query over the `events` stream (overrides -q)")
	fs.StringVar(&o.in, "in", "", "input events TSV (default: generate a small workload)")
	fs.IntVar(&o.machines, "machines", 16, "simulated cluster size")
	fs.DurationVar(&o.window, "window", 6*time.Hour, "window for clickcount")
	fs.Float64Var(&o.zThresh, "z", 1.28, "z threshold for bt feature selection")
	fs.Int64Var(&o.budget, "budget", 0, "memory budget in bytes per reduce partition (0 = unlimited, -1 = spill everything)")
	fs.BoolVar(&o.metrics, "metrics", false, "print per-stage and per-operator metrics to stderr after the run")
	fs.BoolVar(&o.sweepSpill, "sweep-spill", false, "before running, remove stale timr-spill-* dirs leaked by killed jobs (unsafe if another timr job is live)")
	return fs
}

func runCmd(args []string) {
	var o runOpts
	runFlags(&o).Parse(args)

	if o.sweepSpill {
		removed, err := mapreduce.SweepStaleSpillDirs("")
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range removed {
			fmt.Fprintf(os.Stderr, "swept stale spill dir %s\n", d)
		}
	}

	rows, err := loadRows(o.in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d events\n", len(rows))

	cluster := timr.NewCluster(timr.ClusterConfig{Machines: o.machines, MemoryBudget: o.budget})
	defer cluster.Close()
	cluster.FS.Write("events", timr.SinglePartition(timr.UnifiedSchema(), rows))
	cfg := timr.DefaultTiMRConfig()
	var mroot *timr.MetricScope
	if o.metrics {
		mroot = timr.NewMetricScope("timr")
		cluster.Obs = mroot.Child("cluster")
		cfg.Obs = mroot.Child("engine")
	}
	defer dumpMetrics(mroot)
	t := timr.New(cluster, cfg)

	if o.sql != "" {
		plan, err := tsql.Compile(o.sql, tsql.Catalog{"events": timr.UnifiedSchema()})
		if err != nil {
			log.Fatal(err)
		}
		annotated := false
		plan.Walk(func(n *temporal.Plan) {
			if n.Kind == temporal.OpExchange {
				annotated = true
			}
		})
		if !annotated {
			stats := core.DefaultStats()
			stats.SourceRows["events"] = int64(len(rows))
			stats.Machines = int64(o.machines)
			opt, cost, err := core.NewOptimizer(stats).Optimize(plan)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "optimizer annotated the plan (estimated cost %.3g):\n%s", cost, opt)
			plan = opt
		}
		run(t, plan, "out")
		return
	}

	switch o.query {
	case "clickcount":
		w := timr.Time(o.window.Milliseconds())
		plan := timr.Scan("events", timr.UnifiedSchema()).
			Exchange(timr.PartitionBy{Cols: []string{"KwAdId"}}).
			Where(timr.ColEqInt("StreamId", timr.StreamClick)).
			GroupApply([]string{"KwAdId"}, func(g *timr.Plan) *timr.Plan {
				return g.WithWindow(w).Count("ClickCount")
			})
		run(t, plan, "out")
	case "botelim":
		plan := timr.BotElimPlan(timr.DefaultBTParams(), true)
		run(t, plan, "out")
	case "bt":
		p := timr.DefaultBTParams()
		p.ZThreshold = o.zThresh
		horizon := rows[len(rows)-1][0].AsInt() + 1
		p.TrainPeriod = horizon / 2
		pipe := timr.NewBTPipeline(p, t)
		start := time.Now()
		if err := pipe.Run("events"); err != nil {
			log.Fatal(err)
		}
		for _, ph := range pipe.Phases {
			fmt.Fprintf(os.Stderr, "%-14s -> %-12s %8d rows  %v",
				ph.Name, ph.Output, ph.Rows, ph.Duration.Round(time.Millisecond))
			if ph.SpillSegments > 0 {
				fmt.Fprintf(os.Stderr, "  (spilled %d segs, %d KB)",
					ph.SpillSegments, ph.SpillBytes>>10)
			}
			fmt.Fprintln(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, "end-to-end: %v\n", time.Since(start).Round(time.Millisecond))
		emit(t, bt.DSScores)
	default:
		log.Fatalf("unknown query %q", o.query)
	}
}

// dumpMetrics prints the -metrics snapshot table; no-op when the flag is
// off (nil scope). Deferred from runCmd so every query path reports.
func dumpMetrics(root *timr.MetricScope) {
	if root == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "\nmetrics:\n%s", root.Table())
}

func run(t *timr.TiMR, plan *timr.Plan, out string) {
	start := time.Now()
	stat, err := t.Run(plan, map[string]string{"events": "events"}, out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d stage(s) in %v\n", len(stat.Stages), time.Since(start).Round(time.Millisecond))
	emit(t, out)
}

func emit(t *timr.TiMR, dataset string) {
	events, err := t.ResultEvents(dataset)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, e := range events {
		fmt.Fprintf(w, "%d\t%d", e.LE, e.RE)
		for _, v := range e.Payload {
			fmt.Fprintf(w, "\t%s", v.String())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "%d result events\n", len(events))
}

func loadRows(path string) ([]timr.Row, error) {
	if path == "" {
		cfg := timr.DefaultWorkloadConfig()
		cfg.Users, cfg.Days = 800, 2
		return timr.GenerateWorkload(cfg).Rows, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []timr.Row
	sc := bufio.NewScanner(bufio.NewReader(io.Reader(f)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first {
			first = false
			if strings.HasPrefix(line, "Time") {
				continue // header
			}
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad line %q", line)
		}
		row := make(timr.Row, 4)
		for i, p := range parts {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q: %w", p, err)
			}
			row[i] = timr.Int(v)
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}
