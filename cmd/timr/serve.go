package main

// timr serve: the elastic serving tier. Trains the BT models on the
// first half of a generated workload, then scores an open-loop,
// Zipf-skewed stream of ad events against them through the streaming
// ScorePlan job, reporting p50/p99 scoring latency and sustained
// events/s per partition. -rebalance turns on live partition migration
// (split hot workers, merge cold ones); -intake bounds per-wave
// admission so shed/deferred load becomes visible in the metrics.
// -durdir makes the run durable: every wave commits a checkpoint
// generation, and rerunning the same command after a kill -9 resumes
// from the newest intact generation with bit-identical output.

import (
	"flag"
	"fmt"
	"log"
	"os"

	"timr/internal/core"
	"timr/internal/obs"
	"timr/internal/serve"
	"timr/internal/workload"
)

type serveOpts struct {
	users, keywords, ads int
	requests, machines   int
	rate                 float64
	zipf                 float64
	searchFrac           float64
	seed                 int64
	rebalance            bool
	splitAbove           int
	mergeBelow           int
	intake               int
	metrics              bool
	durdir               string
}

func serveFlags(o *serveOpts) *flag.FlagSet {
	if o == nil {
		o = &serveOpts{}
	}
	fs := flag.NewFlagSet("timr serve", flag.ExitOnError)
	fs.IntVar(&o.users, "users", 2000, "user population (training workload and serving load)")
	fs.IntVar(&o.keywords, "keywords", 2000, "keyword vocabulary size")
	fs.IntVar(&o.ads, "ads", 8, "ad classes")
	fs.IntVar(&o.requests, "requests", 20000, "arrivals to serve")
	fs.IntVar(&o.machines, "machines", 4, "partition fan-out of the serving job")
	fs.Float64Var(&o.rate, "rate", 0, "paced arrivals per second (0 = feed as fast as admitted)")
	fs.Float64Var(&o.zipf, "zipf", 1.2, "user skew exponent (> 1)")
	fs.Float64Var(&o.searchFrac, "searchfrac", 0.4, "fraction of arrivals that are profile updates")
	fs.Int64Var(&o.seed, "seed", 1, "workload and load-generator seed")
	fs.BoolVar(&o.rebalance, "rebalance", false, "enable live partition migration (elastic placement)")
	fs.IntVar(&o.splitAbove, "split-above", 0, "rebalance: split a worker over this many events/wave (0 = default)")
	fs.IntVar(&o.mergeBelow, "merge-below", 0, "rebalance: retire a worker under this many events/wave (0 = default)")
	fs.IntVar(&o.intake, "intake", 0, "per-source admission budget per wave (0 = unbounded)")
	fs.BoolVar(&o.metrics, "metrics", false, "print the full metrics table to stderr after the run")
	fs.StringVar(&o.durdir, "durdir", "", "durable checkpoint directory: commit every wave, resume a killed run on restart")
	return fs
}

func serveCmd(args []string) {
	var o serveOpts
	serveFlags(&o).Parse(args)

	scope := obs.New("serve")
	cfg := serve.Config{
		Workload: workload.Config{
			Users: o.users, Keywords: o.keywords, AdClasses: o.ads,
			Days: 2, Seed: o.seed,
		},
		Load: workload.LoadConfig{
			Seed: o.seed, ZipfS: o.zipf, SearchFraction: o.searchFrac,
		},
		Requests: o.requests,
		Machines: o.machines,
		Rate:     o.rate,
		Intake:   o.intake,
		Obs:      scope,
		DurDir:   o.durdir,
	}
	if o.rebalance {
		cfg.Rebalance = &core.RebalanceConfig{
			SplitAbove: o.splitAbove, MergeBelow: o.mergeBelow, MaxWorkers: o.machines,
		}
	}

	fmt.Fprintf(os.Stderr, "serve: training models (users=%d keywords=%d ads=%d seed=%d)...\n",
		o.users, o.keywords, o.ads, o.seed)
	srv, err := serve.Prepare(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serve: %d model events lodged; serving %d arrivals", len(srv.Models()), o.requests)
	if o.rate > 0 {
		fmt.Fprintf(os.Stderr, " paced at %.0f/s", o.rate)
	}
	fmt.Fprintln(os.Stderr, "...")

	rep, _, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}
	if rep.Resumed {
		fmt.Fprintf(os.Stderr, "serve: resumed from durable checkpoints in %s (re-fed %d requests)\n",
			o.durdir, rep.Requests)
	}
	fmt.Println(rep)
	if rep.Migrations > 0 {
		fmt.Printf("serve: workers=%v\n", rep.Workers)
	}
	if o.metrics {
		fmt.Fprintf(os.Stderr, "\nmetrics:\n%s", scope.Table())
	}
}
