// Command timr fronts the TiMR reproduction as subcommands:
//
//	timr run        one-shot temporal queries over advertising logs on
//	                the simulated map-reduce cluster (the original mode)
//	timr serve      long-running elastic serving tier: score arriving ad
//	                events against the trained BT model under an
//	                open-loop Zipf load, with live partition migration
//	timr refresh    incremental BT maintenance: ingest the log one day at
//	                a time, merging summaries instead of recomputing, and
//	                resume a killed run from its durable state
//	timr bench-json run the headline benchmarks and write the perf
//	                trajectory JSON
//
// Usage:
//
//	timr run -q clickcount [-window 6h] [-in events.tsv] [-machines N]
//	timr run -q bt         [-in events.tsv] [-machines N] [-z 1.28]
//	timr run -sql "SELECT AdId, COUNT(*) AS C FROM events WHERE StreamId = 1
//	               GROUP BY AdId WINDOW 6h" [-in events.tsv]
//	timr serve [-requests N] [-rate R] [-machines N] [-rebalance] [-metrics]
//	timr refresh [-days N] [-mode auto|full|delta] [-warm] [-durdir DIR]
//	timr bench-json [-out BENCH_pr10.json]
//
// Bare `timr [flags]` (no subcommand) is the deprecated legacy spelling
// of `timr run` and keeps working with a note on stderr.
package main

import (
	"fmt"
	"os"

	"timr/internal/benchjson"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "run":
			runCmd(args[1:])
			return
		case "serve":
			serveCmd(args[1:])
			return
		case "refresh":
			refreshCmd(args[1:])
			return
		case "bench-json":
			if err := benchjson.RunCLI(args[1:]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		case "help", "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: timr <run|serve|refresh|bench-json> [flags]\n\nrun flags:")
			runFlags(nil).PrintDefaults()
			fmt.Fprintln(os.Stderr, "\nserve flags:")
			serveFlags(nil).PrintDefaults()
			fmt.Fprintln(os.Stderr, "\nrefresh flags:")
			refreshFlags(nil).PrintDefaults()
			return
		}
	}
	// No subcommand: the pre-subcommand CLI shape, kept for scripts.
	fmt.Fprintln(os.Stderr, "timr: note: bare `timr [flags]` is deprecated; use `timr run [flags]`")
	runCmd(args)
}
