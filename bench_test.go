// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), one benchmark (family) per result. Absolute numbers
// reflect the simulated substrate, not the paper's 150-node Cosmos
// cluster; the shapes — who wins and by roughly what factor — are the
// reproduction target (see EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
package timr_test

import (
	"fmt"
	"sync"
	"testing"

	"timr"
	"timr/internal/baseline"
	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/experiments"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// ---- shared fixtures (built once, reused across benchmarks) ----

var (
	fixOnce sync.Once
	fixData *workload.Dataset
	fixBT   *experiments.BTRun
	fixErr  error
)

func fixtures(b *testing.B) (*workload.Dataset, *experiments.BTRun) {
	b.Helper()
	fixOnce.Do(func() {
		opt := experiments.QuickOptions()
		fixData = workload.Generate(opt.Workload)
		fixBT, fixErr = experiments.RunBT(opt)
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixData, fixBT
}

func clickLog(d *workload.Dataset) (*temporal.Schema, []temporal.Row) {
	schema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	var clicks []temporal.Row
	for _, r := range d.Rows {
		if r[1].AsInt() == workload.StreamClick {
			clicks = append(clicks, temporal.Row{r[0], r[2], r[3]})
		}
	}
	return schema, clicks
}

func quickParams() bt.Params {
	return experiments.QuickOptions().Params
}

// ---- §II-C strawman: RunningClickCount three ways ----

func BenchmarkStrawman_ScopeSelfJoin(b *testing.B) {
	d, _ := fixtures(b)
	_, clicks := clickLog(d)
	window := 6 * temporal.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The set-oriented plan materializes the full band self-join; the
		// cap keeps the benchmark bounded when it explodes (the paper's
		// "intractable" outcome still costs the work done up to the cap).
		if _, _, err := baseline.ScopeRunningClickCount(baseline.SliceSource(clicks), window, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrawman_CustomReducer(b *testing.B) {
	d, _ := fixtures(b)
	schema, clicks := clickLog(d)
	window := 6 * temporal.Hour
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
		cl.FS.Write("clicks", mapreduce.SinglePartition(schema, clicks))
		if _, err := cl.Run(baseline.CustomRunningClickCountStage("clicks", "out", window)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrawman_TiMR(b *testing.B) {
	d, _ := fixtures(b)
	schema, clicks := clickLog(d)
	plan := temporal.Scan("clicks", schema).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(6 * temporal.Hour).Count("ClickCount")
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("clicks", mapreduce.SinglePartition(schema, clicks))
		if _, err := tm.Run(plan, map[string]string{"clicks": "clicks"}, "out"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 14: end-to-end BT, TiMR vs custom reducers ----

func BenchmarkFig14_EndToEnd_TiMR(b *testing.B) {
	d, _ := fixtures(b)
	p := quickParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
		pipe := bt.NewPipeline(p, tm)
		if err := pipe.Run("events"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14_EndToEnd_Custom(b *testing.B) {
	d, _ := fixtures(b)
	p := quickParams()
	cp := baseline.CustomParams{
		T1: p.T1, T2: p.T2, BotHop: p.BotHop, Tau: p.Tau, D: p.D,
		TrainPeriod: p.TrainPeriod, ZThreshold: p.ZThreshold, ModelEpochs: p.ModelEpochs,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
		if _, err := baseline.CustomBTJob(cl, "events", cp); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 15: per-engine throughput of each BT sub-query ----

func BenchmarkFig15_Throughput(b *testing.B) {
	d, _ := fixtures(b)
	p := quickParams()
	events := d.Events()
	phases, err := bt.RunSingleNode(p, events)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		plan   func() *temporal.Plan
		inputs map[string][]temporal.Event
	}{
		{"BotElim", func() *temporal.Plan { return bt.BotElimPlan(p, false) },
			map[string][]temporal.Event{bt.SourceEvents: events}},
		{"GenTrainData", func() *temporal.Plan { return bt.TrainDataPlan(p, false) },
			map[string][]temporal.Event{bt.SourceLabeled: phases[bt.DSLabeled], bt.SourceClean: phases[bt.DSClean]}},
		{"FeatureSelect", func() *temporal.Plan { return bt.FeatureSelectPlan(p, false) },
			map[string][]temporal.Event{bt.SourceLabeled: phases[bt.DSLabeled], bt.SourceTrain: phases[bt.DSTrain]}},
		{"ModelGen", func() *temporal.Plan { return bt.ModelPlan(p, false) },
			map[string][]temporal.Event{bt.SourceReduced: phases[bt.DSReduced]}},
	}
	for _, c := range cases {
		n := 0
		for _, evs := range c.inputs {
			n += len(evs)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := temporal.RunPlan(c.plan(), c.inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// ---- Figure 16: temporal partitioning span-width sweep ----

func BenchmarkFig16_SpanWidth(b *testing.B) {
	d, _ := fixtures(b)
	widths := []temporal.Time{
		90 * temporal.Minute, 3 * temporal.Hour, 6 * temporal.Hour, 12 * temporal.Hour,
	}
	for _, w := range widths {
		w := w
		b.Run(fmt.Sprintf("span=%dm", w/temporal.Minute), func(b *testing.B) {
			plan := temporal.Scan("events", workload.UnifiedSchema()).
				Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: w}).
				WithWindow(30 * temporal.Minute).
				Count("C")
			for i := 0; i < b.N; i++ {
				cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
				tm := core.New(cl, core.DefaultConfig())
				cl.FS.Write("ds", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
				stat, err := tm.Run(plan, map[string]string{"events": "ds"}, "out")
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(stat.Makespan(150, 0).Microseconds()), "makespan_us")
				}
			}
		})
	}
}

// ---- Example 3: fragment optimization ----

func BenchmarkEx3_FragmentOptimization(b *testing.B) {
	_, r := fixtures(b)
	p := r.Opt.Params
	variants := []struct {
		name string
		plan func() *temporal.Plan
	}{
		{"optimized", func() *temporal.Plan { return bt.TrainDataPlan(p, true) }},
		{"naive", func() *temporal.Plan { return bt.NaiveTrainDataPlan(p) }},
	}
	clean := r.Cluster.FS.MustRead(bt.DSClean)
	labeled := r.Cluster.FS.MustRead(bt.DSLabeled)
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cl := mapreduce.NewCluster(mapreduce.Config{Machines: 8})
				tm := core.New(cl, core.DefaultConfig())
				cl.FS.Write(bt.DSClean, clean)
				cl.FS.Write(bt.DSLabeled, labeled)
				sources := map[string]string{bt.SourceLabeled: bt.DSLabeled, bt.SourceClean: bt.DSClean}
				if _, err := tm.Run(v.plan(), sources, "out"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figures 17-20: feature selection and dimensionality reduction ----

func BenchmarkFig17to19_FeatureSelection(b *testing.B) {
	_, r := fixtures(b)
	p := r.Opt.Params
	labeled := temporal.RowsToPointEvents(r.Labeled, 0)
	train := temporal.RowsToPointEvents(r.Train, 0)
	inputs := map[string][]temporal.Event{bt.SourceLabeled: labeled, bt.SourceTrain: train}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.RunPlan(bt.FeatureSelectPlan(p, false), inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20_DimReduction(b *testing.B) {
	_, r := fixtures(b)
	ad := r.Data.Ads[0]
	train, _ := r.AdExamples(ad.ID)
	for _, th := range []float64{0, 1.28, 2.56} {
		th := th
		b.Run(fmt.Sprintf("KE-%.2f", th), func(b *testing.B) {
			s := baseline.NewKEZ(r.Scores[ad.ID], th)
			for i := 0; i < b.N; i++ {
				baseline.TransformExamples(s, train)
			}
			b.ReportMetric(float64(s.Dims()), "kw_retained")
		})
	}
	b.Run("F-Ex", func(b *testing.B) {
		s := baseline.NewFEx(2000)
		for i := 0; i < b.N; i++ {
			baseline.TransformExamples(s, train)
		}
		b.ReportMetric(float64(s.Dims()), "kw_retained")
	})
}

// ---- Figures 21-23 + §V-D: model quality and learning time ----

func BenchmarkFig21_CTRLiftSubsets(b *testing.B) {
	_, r := fixtures(b)
	ctx := experiments.NewContextWithRun(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig21(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22_LiftCoverage(b *testing.B) {
	_, r := fixtures(b)
	ad := r.Data.Ads[3] // movies
	train, test := r.AdExamples(ad.ID)
	schemes := []baseline.Scheme{
		baseline.NewKEZ(r.Scores[ad.ID], 1.28),
		baseline.NewFEx(2000),
		baseline.NewKEPop(r.Popularity(), 100),
	}
	for _, s := range schemes {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var area float64
			for i := 0; i < b.N; i++ {
				res := experiments.EvaluateScheme(s, train, test, 20)
				area = res.Area
			}
			b.ReportMetric(area, "lift_area")
		})
	}
}

func BenchmarkMemTime_LRLearning(b *testing.B) {
	_, r := fixtures(b)
	ad := r.Data.Ads[4] // dieting
	train, test := r.AdExamples(ad.ID)
	schemes := []baseline.Scheme{
		baseline.NewFEx(2000),
		baseline.NewKEZ(r.Scores[ad.ID], 1.28),
		baseline.NewKEZ(r.Scores[ad.ID], 2.56),
	}
	for _, s := range schemes {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			var ubp float64
			for i := 0; i < b.N; i++ {
				res := experiments.EvaluateScheme(s, train, test, 20)
				ubp = res.AvgUBPSize
			}
			b.ReportMetric(ubp, "avg_ubp_entries")
		})
	}
}

// ---- Engine microbenchmarks (per-event costs with allocations) ----

func BenchmarkEngine_WindowedCount(b *testing.B) {
	d, _ := fixtures(b)
	_, clicks := clickLog(d)
	events := temporal.RowsToPointEvents(clicks, 0)
	schema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	plan := temporal.Scan("in", schema).WithWindow(temporal.Hour).Count("C")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.RunPlan(plan, map[string][]temporal.Event{"in": events}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkEngine_GroupApplyJoin(b *testing.B) {
	d, _ := fixtures(b)
	p := quickParams()
	events := d.Events()
	plan := bt.BotElimPlan(p, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.RunPlan(plan, map[string][]temporal.Event{bt.SourceEvents: events}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// ---- Engine feed path: per-event vs batched push ----

// engineFeedFixture builds a stateless hot chain (filters → window) over
// the click log — the shape of a TiMR reducer's inner loop, where
// per-call overhead dominates because each operator does almost no work
// per event. No allocating operator (project, aggregate) is included:
// those costs are identical on both paths and would mask the dispatch
// saving this benchmark isolates.
func engineFeedFixture(b *testing.B) (*temporal.Plan, []temporal.Event) {
	b.Helper()
	d, _ := fixtures(b)
	schema, clicks := clickLog(d)
	events := temporal.RowsToPointEvents(clicks, 0)
	plan := temporal.Scan("in", schema).
		Where(temporal.ColGtInt("AdId", -1)). // always true: measures dispatch, not selectivity
		Where(temporal.ColGtInt("UserId", -1)).
		WithWindow(temporal.Hour)
	return plan, events
}

func BenchmarkEngineFeed_PerEvent(b *testing.B) {
	plan, events := engineFeedFixture(b)
	sink := &temporal.Collector{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		eng, err := temporal.NewEngine(plan, temporal.WithSink(sink))
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range events {
			eng.Feed("in", e)
		}
		eng.Flush()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkEngineFeed_Batched(b *testing.B) {
	plan, events := engineFeedFixture(b)
	sink := &temporal.Collector{}
	const batchSize = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		eng, err := temporal.NewEngine(plan, temporal.WithSink(sink))
		if err != nil {
			b.Fatal(err)
		}
		var batch temporal.Batch
		for off := 0; off < len(events); off += batchSize {
			end := off + batchSize
			if end > len(events) {
				end = len(events)
			}
			batch = temporal.Batch{Events: events[off:end]}
			eng.FeedBatch("in", &batch)
		}
		eng.Flush()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineFeed_Columnar feeds the same event stream as columnar
// batches (the decode-once ingest shape). The fixture's stateless prefix
// compiles into a fused kernel with a columnar entry point, so batches
// run filter predicates over vectors under a selection bitmap and rows
// materialize only at the window boundary — there is no per-batch
// column-to-row transpose at the engine boundary anymore.
func BenchmarkEngineFeed_Columnar(b *testing.B) {
	plan, events := engineFeedFixture(b)
	sink := &temporal.Collector{}
	const batchSize = 1024
	ncols := len(events[0].Payload)
	var batches []*temporal.ColBatch
	for off := 0; off < len(events); off += batchSize {
		end := off + batchSize
		if end > len(events) {
			end = len(events)
		}
		batches = append(batches, temporal.ColBatchFromEvents(events[off:end], ncols))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		eng, err := temporal.NewEngine(plan, temporal.WithSink(sink))
		if err != nil {
			b.Fatal(err)
		}
		for _, cb := range batches {
			eng.FeedColBatch("in", cb)
		}
		eng.Flush()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineFeed_Fused is the columnar feed with the fused entry
// point asserted live — the headline number for the fusion pass. It
// measures the same work as Columnar but fails loudly if a compile
// change ever silently drops the plan head back to row fallback.
func BenchmarkEngineFeed_Fused(b *testing.B) {
	plan, events := engineFeedFixture(b)
	sink := &temporal.Collector{}
	const batchSize = 1024
	ncols := len(events[0].Payload)
	var batches []*temporal.ColBatch
	for off := 0; off < len(events); off += batchSize {
		end := off + batchSize
		if end > len(events) {
			end = len(events)
		}
		batches = append(batches, temporal.ColBatchFromEvents(events[off:end], ncols))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		eng, err := temporal.NewEngine(plan, temporal.WithSink(sink))
		if err != nil {
			b.Fatal(err)
		}
		if eng.Pipeline().ColInput("in") == nil {
			b.Fatal("plan head did not compile to a fused columnar entry")
		}
		for _, cb := range batches {
			eng.FeedColBatch("in", cb)
		}
		eng.Flush()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineFeed_ColumnarInterpreted is the pre-fusion columnar
// path: the same batches on an interpreted engine, which must transpose
// every batch to rows at the engine boundary before the per-operator
// push chain. The gap to Fused is the cost the fusion pass removes.
func BenchmarkEngineFeed_ColumnarInterpreted(b *testing.B) {
	plan, events := engineFeedFixture(b)
	sink := &temporal.Collector{}
	const batchSize = 1024
	ncols := len(events[0].Payload)
	var batches []*temporal.ColBatch
	for off := 0; off < len(events); off += batchSize {
		end := off + batchSize
		if end > len(events) {
			end = len(events)
		}
		batches = append(batches, temporal.ColBatchFromEvents(events[off:end], ncols))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		eng, err := temporal.NewEngine(plan, temporal.WithSink(sink), temporal.WithInterpreted())
		if err != nil {
			b.Fatal(err)
		}
		for _, cb := range batches {
			eng.FeedColBatch("in", cb)
		}
		eng.Flush()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// Facade smoke check: the public API surface used by the examples.
func TestFacadeSmoke(t *testing.T) {
	schema := timr.NewSchema(
		timr.Field{Name: "Time", Kind: timr.KindInt},
		timr.Field{Name: "V", Kind: timr.KindInt},
	)
	plan := timr.Scan("in", schema).WithWindow(10).Count("C")
	out, err := timr.RunPlan(plan, map[string][]timr.Event{
		"in": {timr.PointEvent(1, timr.Row{timr.Int(1), timr.Int(5)})},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Payload[0].AsInt() != 1 {
		t.Fatalf("out = %v", out)
	}
}
